/**
 * @file
 * Unit tests for the Co-running FPGA architecture simulator:
 * NWS / WS / WSS orderings of Fig. 22 and the pipeline variants of
 * Fig. 23.
 */
#include <gtest/gtest.h>

#include "fpga/arch.h"
#include "fpga/pipeline.h"

namespace insitu {
namespace {

constexpr int64_t kPaperPes = 2628;

TEST(EngineUnroll, PickIsNearSquareAndWithinBudget)
{
    const EngineUnroll e = pick_engine_unroll(262);
    EXPECT_LE(e.tn * e.tm, 262);
    EXPECT_GE(e.tn * e.tm, 200);
    EXPECT_LE(std::abs(e.tn - e.tm), e.tn);
}

TEST(ArchSim, WssGeometryMatchesPaper)
{
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const WssConfig wss = sim.wss_config();
    EXPECT_EQ(wss.tr, 14);
    EXPECT_EQ(wss.tc, 14);
    // 2628 / 637 = 4 WSS units, the paper's group.
    EXPECT_EQ(wss.group_size, 4);
}

TEST(ArchSim, ComputeOrderingWssBestWsWorst)
{
    // Fig 22: "WSS outperforms the other two architectures in terms
    // of compute time, while WS has the worst compute performance".
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const NetworkDesc net = alexnet_desc();
    const auto nws = sim.run_conv_layers(net, ArchKind::kNws, 3);
    const auto ws = sim.run_conv_layers(net, ArchKind::kWs, 3);
    const auto wss = sim.run_conv_layers(net, ArchKind::kWss, 3);
    EXPECT_LT(wss.compute_seconds, nws.compute_seconds);
    EXPECT_LT(nws.compute_seconds, ws.compute_seconds);
}

TEST(ArchSim, TotalRuntimeOrderingMatchesFig22)
{
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const NetworkDesc net = alexnet_desc();
    for (size_t shared : {0u, 3u, 5u}) {
        const auto nws =
            sim.run_conv_layers(net, ArchKind::kNws, shared);
        const auto ws = sim.run_conv_layers(net, ArchKind::kWs, shared);
        const auto wss =
            sim.run_conv_layers(net, ArchKind::kWss, shared);
        EXPECT_LT(wss.total_seconds(), nws.total_seconds())
            << "shared=" << shared;
        EXPECT_LT(wss.total_seconds(), ws.total_seconds())
            << "shared=" << shared;
    }
}

TEST(ArchSim, WsTileEnginesIdleRoughly75Percent)
{
    // §IV-B2: "the convolution engines in diagnosis task will be idle
    // during 75% of cycles" under uniform unrolling.
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const auto ws =
        sim.run_conv_layers(alexnet_desc(), ArchKind::kWs, 3);
    EXPECT_NEAR(ws.idle_fraction, 0.75, 0.1);
}

TEST(ArchSim, WssBalancedEnginesBarelyIdle)
{
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const auto wss =
        sim.run_conv_layers(alexnet_desc(), ArchKind::kWss, 3);
    EXPECT_LT(wss.idle_fraction, 0.35);
}

TEST(ArchSim, WeightTrafficDropsWithSharedLayers)
{
    // Fig 22: data-access time decreases as shared layers increase
    // for the weight-shared architectures; NWS stays flat.
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const NetworkDesc net = alexnet_desc();
    auto access = [&](ArchKind kind, size_t shared) {
        return sim.run_conv_layers(net, kind, shared).access_seconds;
    };
    EXPECT_DOUBLE_EQ(access(ArchKind::kNws, 0),
                     access(ArchKind::kNws, 5));
    EXPECT_GT(access(ArchKind::kWs, 0), access(ArchKind::kWs, 3));
    EXPECT_GT(access(ArchKind::kWs, 3), access(ArchKind::kWs, 5));
    EXPECT_GT(access(ArchKind::kWss, 0), access(ArchKind::kWss, 3));
    // WSS always accesses less than NWS.
    EXPECT_LT(access(ArchKind::kWss, 0), access(ArchKind::kNws, 0));
}

TEST(ArchSim, LayerStatsMarkSharedPrefix)
{
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    const auto stats =
        sim.layer_stats(alexnet_desc(), ArchKind::kWss, 3);
    ASSERT_EQ(stats.size(), 5u);
    EXPECT_TRUE(stats[0].weights_shared);
    EXPECT_TRUE(stats[2].weights_shared);
    EXPECT_FALSE(stats[3].weights_shared);
}

TEST(ArchSim, SharingMoreLayersThanConvsDies)
{
    FpgaArchSim sim(vx690t_spec(), kPaperPes);
    EXPECT_DEATH(
        sim.run_conv_layers(alexnet_desc(), ArchKind::kWss, 6),
        "share");
}

TEST(Pipeline, VariantNames)
{
    EXPECT_STREQ(pipeline_variant_name(PipelineVariant::kWssNws),
                 "WSS-NWS");
    EXPECT_STREQ(arch_name(ArchKind::kWss), "WSS");
}

TEST(Pipeline, NwsThroughputFlatWithoutBatching)
{
    // Fig 23: NWS "could not increase its processing throughput even
    // under a loose requirement of latency".
    CorunPipeline pipe(vx690t_spec(), kPaperPes, {8, 10});
    const NetworkDesc net = alexnet_desc();
    const auto strict =
        pipe.best_under_latency(net, PipelineVariant::kNws, 0.2);
    const auto loose =
        pipe.best_under_latency(net, PipelineVariant::kNws, 0.8);
    ASSERT_TRUE(strict.feasible);
    ASSERT_TRUE(loose.feasible);
    EXPECT_NEAR(loose.throughput, strict.throughput,
                0.15 * strict.throughput);
}

TEST(Pipeline, NwsBatchBeatsNws)
{
    CorunPipeline pipe(vx690t_spec(), kPaperPes, {8, 10});
    const NetworkDesc net = alexnet_desc();
    const auto nws =
        pipe.best_under_latency(net, PipelineVariant::kNws, 0.8);
    const auto nwsb =
        pipe.best_under_latency(net, PipelineVariant::kNwsBatch, 0.8);
    EXPECT_GT(nwsb.throughput, nws.throughput);
}

TEST(Pipeline, WssNwsBestEverywhere)
{
    // Fig 23: "Among all the requirements of latency, our WSS-NWS can
    // achieve the best processing throughput."
    CorunPipeline pipe(vx690t_spec(), kPaperPes, {8, 10});
    const NetworkDesc net = alexnet_desc();
    for (double req : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        const auto best = pipe.best_under_latency(
            net, PipelineVariant::kWssNws, req);
        ASSERT_TRUE(best.feasible) << req;
        for (auto v : {PipelineVariant::kNws,
                       PipelineVariant::kNwsBatch,
                       PipelineVariant::kWs}) {
            const auto other = pipe.best_under_latency(net, v, req);
            if (other.feasible) {
                EXPECT_GT(best.throughput, other.throughput)
                    << pipeline_variant_name(v) << " at " << req;
            }
        }
    }
}

TEST(Pipeline, WsMissesStrictLatency)
{
    // Fig 23: WS cannot meet the 50 ms requirement (marked x).
    CorunPipeline pipe(vx690t_spec(), kPaperPes, {8, 10});
    const auto ws = pipe.best_under_latency(
        alexnet_desc(), PipelineVariant::kWs, 0.05);
    EXPECT_FALSE(ws.feasible);
}

TEST(Pipeline, PlansRespectLatencyRequirement)
{
    CorunPipeline pipe(vx690t_spec(), kPaperPes, {8, 10});
    const NetworkDesc net = alexnet_desc();
    for (auto v : {PipelineVariant::kNwsBatch,
                   PipelineVariant::kWssNws}) {
        const auto plan = pipe.best_under_latency(net, v, 0.2);
        ASSERT_TRUE(plan.feasible);
        EXPECT_LE(plan.latency, 0.2);
        EXPECT_GE(plan.batch, 1);
    }
}

} // namespace
} // namespace insitu
