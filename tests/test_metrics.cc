/**
 * @file
 * Unit tests for metrics (confusion matrix, binary detector scores),
 * the LR schedule, the Adam optimizer, and the diagnosis-vs-errors
 * scoring hook.
 */
#include <gtest/gtest.h>

#include "iot/tasks.h"
#include "nn/linear.h"
#include "models/tiny.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy)
{
    ConfusionMatrix cm(3);
    cm.add_batch({0, 0, 1, 2, 2}, {0, 1, 1, 2, 0});
    EXPECT_EQ(cm.total(), 5);
    EXPECT_EQ(cm.count(0, 1), 1);
    EXPECT_EQ(cm.count(2, 0), 1);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrix, PrecisionRecall)
{
    ConfusionMatrix cm(2);
    // truth 0: predicted 0 x3, predicted 1 x1.
    // truth 1: predicted 1 x2, predicted 0 x2.
    cm.add_batch({0, 0, 0, 0, 1, 1, 1, 1}, {0, 0, 0, 1, 1, 1, 0, 0});
    EXPECT_DOUBLE_EQ(cm.recall(0), 0.75);
    EXPECT_DOUBLE_EQ(cm.recall(1), 0.5);
    EXPECT_DOUBLE_EQ(cm.precision(0), 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(cm.macro_recall(), (0.75 + 0.5) / 2.0);
}

TEST(ConfusionMatrix, UnseenClassHasZeroRecall)
{
    ConfusionMatrix cm(3);
    cm.add(0, 0);
    EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
    EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
}

TEST(ConfusionMatrix, OutOfRangeDies)
{
    ConfusionMatrix cm(2);
    EXPECT_DEATH(cm.add(2, 0), "out of range");
}

TEST(BinaryMetrics, ScoreBasics)
{
    const std::vector<bool> flags{true, true, false, false, true};
    const std::vector<bool> truth{true, false, false, true, true};
    const BinaryMetrics m = BinaryMetrics::score(flags, truth);
    EXPECT_EQ(m.true_positive, 2);
    EXPECT_EQ(m.false_positive, 1);
    EXPECT_EQ(m.false_negative, 1);
    EXPECT_EQ(m.true_negative, 1);
    EXPECT_DOUBLE_EQ(m.precision(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.recall(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.positive_rate(), 3.0 / 5.0);
    EXPECT_NEAR(m.f1(), 2.0 / 3.0, 1e-12);
}

TEST(BinaryMetrics, EdgeConventions)
{
    BinaryMetrics nothing_flagged;
    nothing_flagged.true_negative = 4;
    EXPECT_DOUBLE_EQ(nothing_flagged.precision(), 1.0);
    EXPECT_DOUBLE_EQ(nothing_flagged.recall(), 1.0);
}

TEST(StepLrSchedule, DecaysAtPeriod)
{
    Sgd opt({.lr = 0.1});
    StepLrSchedule schedule(opt, 2, 0.5);
    schedule.on_epoch_end();
    EXPECT_DOUBLE_EQ(opt.lr(), 0.1);
    schedule.on_epoch_end();
    EXPECT_DOUBLE_EQ(opt.lr(), 0.05);
    schedule.on_epoch_end();
    schedule.on_epoch_end();
    EXPECT_DOUBLE_EQ(opt.lr(), 0.025);
    EXPECT_EQ(schedule.epoch(), 4);
}

TEST(Adam, DescendsOnQuadratic)
{
    auto p = std::make_shared<Parameter>("w", std::vector<int64_t>{1});
    p->value().at(0) = 5.0f;
    Adam opt({.lr = 0.1});
    for (int i = 0; i < 200; ++i) {
        p->zero_grad();
        p->grad().at(0) = 2.0f * (p->value().at(0) - 1.0f);
        opt.step({p});
    }
    EXPECT_NEAR(p->value().at(0), 1.0f, 1e-2f);
}

TEST(Adam, SkipsFrozenAndResets)
{
    auto p = std::make_shared<Parameter>("w", std::vector<int64_t>{1});
    p->set_frozen(true);
    p->grad().at(0) = 1.0f;
    Adam opt({.lr = 0.1});
    opt.step({p});
    EXPECT_EQ(p->value().at(0), 0.0f);
    opt.reset_state(); // must not crash with empty state
}

TEST(Adam, AdaptsStepToGradientScale)
{
    // Two parameters with very different gradient magnitudes should
    // move comparably under Adam (per-coordinate normalization).
    auto a = std::make_shared<Parameter>("a", std::vector<int64_t>{1});
    auto b = std::make_shared<Parameter>("b", std::vector<int64_t>{1});
    Adam opt({.lr = 0.01});
    for (int i = 0; i < 10; ++i) {
        a->zero_grad();
        b->zero_grad();
        a->grad().at(0) = 100.0f;
        b->grad().at(0) = 0.01f;
        opt.step({a, b});
    }
    EXPECT_NEAR(a->value().at(0), b->value().at(0), 1e-3f);
}

TEST(DiagnosisScoring, PerfectDetectorScoresPerfectly)
{
    // Construct a scenario where diagnosis flags exactly the
    // inference errors by scoring flags against themselves through
    // the BinaryMetrics contract.
    const std::vector<bool> errors{true, false, true};
    const BinaryMetrics m = BinaryMetrics::score(errors, errors);
    EXPECT_DOUBLE_EQ(m.precision(), 1.0);
    EXPECT_DOUBLE_EQ(m.recall(), 1.0);
    EXPECT_DOUBLE_EQ(m.f1(), 1.0);
}

TEST(DiagnosisScoring, ScoreAgainstErrorsRunsEndToEnd)
{
    Rng rng(3);
    TinyConfig config;
    config.num_permutations = 8;
    PermutationSet perms(config.num_permutations, rng);
    InferenceTask inference(make_tiny_inference(config, rng));
    DiagnosisTask diagnosis(make_tiny_jigsaw(config, rng), perms,
                            DiagnosisConfig{}, 4);
    SynthConfig synth;
    const Dataset data = make_dataset(synth, 30, Condition::ideal(), rng);
    const BinaryMetrics m =
        diagnosis.score_against_errors(inference, data);
    EXPECT_EQ(m.true_positive + m.false_positive + m.true_negative +
                  m.false_negative,
              30);
    // An untrained diagnosis flags nearly everything, so recall of
    // the (untrained) inference errors must be high.
    EXPECT_GT(m.recall(), 0.8);
}

} // namespace
} // namespace insitu
