/**
 * @file
 * Numerical gradient checks: every differentiable layer's analytic
 * backward pass is compared against central finite differences.
 */
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/grad_check.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "util/rng.h"

namespace insitu {
namespace {

/** Run a full check of @p net on random data with @p classes outputs. */
GradCheckResult
check_net(Network& net, const Tensor& x,
          const std::vector<int64_t>& labels)
{
    SoftmaxCrossEntropy loss;
    auto loss_fn = [&]() {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&]() {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    return check_gradients(net, loss_fn, backward_fn);
}

TEST(GradCheck, LinearLayer)
{
    Rng rng(21);
    Network net("lin");
    net.emplace<Linear>("fc", 6, 4, rng);
    Tensor x({3, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto r = check_net(net, x, {0, 2, 3});
    EXPECT_TRUE(r.ok()) << "rel err " << r.max_rel_error;
    EXPECT_GT(r.checked, 0);
}

TEST(GradCheck, MlpWithReLU)
{
    Rng rng(22);
    Network net("mlp");
    net.emplace<Linear>("fc1", 5, 7, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc2", 7, 3, rng);
    Tensor x({4, 5});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {0, 1, 2, 1}).ok());
}

TEST(GradCheck, ConvLayer)
{
    Rng rng(23);
    Network net("conv");
    net.emplace<Conv2d>("c", 2, 3, 3, 1, 1, rng)
        .emplace<Flatten>()
        .emplace<Linear>("fc", 3 * 5 * 5, 2, rng);
    Tensor x({2, 2, 5, 5});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {0, 1}).ok());
}

TEST(GradCheck, StridedPaddedConv)
{
    Rng rng(24);
    Network net("conv_s2");
    net.emplace<Conv2d>("c", 1, 2, 3, 2, 1, rng)
        .emplace<Flatten>()
        .emplace<Linear>("fc", 2 * 4 * 4, 2, rng);
    Tensor x({1, 1, 7, 7});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {1}).ok());
}

TEST(GradCheck, ConvReluPoolStack)
{
    Rng rng(25);
    Network net("cnn");
    net.emplace<Conv2d>("c1", 1, 3, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<MaxPool2d>("p1", 2, 2)
        .emplace<Flatten>()
        .emplace<Linear>("fc", 3 * 4 * 4, 3, rng);
    Tensor x({2, 1, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {2, 0}).ok());
}

TEST(GradCheck, AvgPoolStack)
{
    Rng rng(26);
    Network net("avg");
    net.emplace<Conv2d>("c1", 1, 2, 3, 1, 0, rng)
        .emplace<AvgPool2d>("p1", 2, 2)
        .emplace<Flatten>()
        .emplace<Linear>("fc", 2 * 3 * 3, 2, rng);
    Tensor x({1, 1, 8, 8});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {0}).ok());
}

TEST(GradCheck, TwoConvNetwork)
{
    Rng rng(27);
    Network net("two");
    net.emplace<Conv2d>("c1", 1, 2, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<Conv2d>("c2", 2, 2, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<Flatten>()
        .emplace<Linear>("fc", 2 * 6 * 6, 2, rng);
    Tensor x({1, 1, 6, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {1}).ok());
}

TEST(GradCheck, SharedWeightGradientsAccumulateFromBothUsers)
{
    // When two layers in one network share a parameter, its gradient
    // must be the sum of both contributions (the jigsaw trunk relies
    // on this through the batch-fold, and WSS relies on it on-chip).
    Rng rng(28);
    Network net("shared");
    net.emplace<Linear>("fc1", 4, 4, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc2", 4, 4, rng)
        .emplace<Linear>("head", 4, 2, rng);
    // Make fc2 share fc1's weights.
    auto donor = net.layer(0).params();
    net.layer(2).set_param(0, donor[0]);
    net.layer(2).set_param(1, donor[1]);
    EXPECT_EQ(net.params().size(), 4u); // fc1 w/b (shared), head w/b

    Tensor x({3, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const auto r = check_net(net, x, {0, 1, 0});
    EXPECT_TRUE(r.ok()) << "rel err " << r.max_rel_error;
}

TEST(GradCheck, FrozenPrefixSkipsBackwardButSuffixStaysCorrect)
{
    Rng rng(29);
    Network net("frozen");
    net.emplace<Conv2d>("c1", 1, 2, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<Flatten>()
        .emplace<Linear>("fc", 2 * 4 * 4, 2, rng);
    net.freeze_first_convs(1);
    Tensor x({1, 1, 4, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    // The trainable suffix still gets exact gradients...
    EXPECT_TRUE(check_net(net, x, {1}).ok());
    // ...while the frozen conv receives none at all (backward
    // early-stops above it — the Fig. 6 fine-tuning speedup).
    const auto convs = net.conv_layer_indices();
    for (auto& p : net.layer(convs[0]).params())
        EXPECT_EQ(p->grad().squared_norm(), 0.0);
}

TEST(GradCheck, MidNetworkFreezeStillBackpropagatesThroughFrozen)
{
    // Freezing only an inner layer must not break gradients for an
    // earlier trainable layer: gradients flow *through* frozen
    // parameters whenever something below them still trains.
    Rng rng(30);
    Network net("mid");
    net.emplace<Linear>("fc1", 4, 6, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc2", 6, 6, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc3", 6, 2, rng);
    for (auto& p : net.layer(2).params()) p->set_frozen(true);
    Tensor x({3, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    EXPECT_TRUE(check_net(net, x, {0, 1, 1}).ok());
}

} // namespace
} // namespace insitu
