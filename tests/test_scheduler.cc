/**
 * @file
 * Unit tests for the Single-running duty-cycle scheduler.
 */
#include <gtest/gtest.h>

#include "iot/scheduler.h"

namespace insitu {
namespace {

DutyCycleConfig
default_config()
{
    DutyCycleConfig c;
    c.frames_per_day = 5000;
    c.latency_requirement_s = 0.033;
    return c;
}

TEST(DutyCycle, PlanIsFeasibleForModestWorkload)
{
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()),
                                 default_config());
    const DutyCyclePlan plan = scheduler.plan(
        alexnet_desc(), diagnosis_desc(alexnet_desc()));
    EXPECT_TRUE(plan.feasible);
    EXPECT_GT(plan.inference_busy_s, 0.0);
    EXPECT_GT(plan.diagnosis_busy_s, 0.0);
    EXPECT_LE(plan.day_utilization, 1.0);
    EXPECT_LE(plan.night_utilization, 1.0);
    EXPECT_GT(plan.energy_headroom_wh(scheduler.config()), 0.0);
}

TEST(DutyCycle, BusyTimeScalesWithFrames)
{
    DutyCycleConfig light = default_config();
    DutyCycleConfig heavy = default_config();
    heavy.frames_per_day = 50000;
    const NetworkDesc net = alexnet_desc();
    const NetworkDesc diag = diagnosis_desc(net);
    const auto pl = DutyCycleScheduler(GpuModel(tx1_spec()), light)
                        .plan(net, diag);
    const auto ph = DutyCycleScheduler(GpuModel(tx1_spec()), heavy)
                        .plan(net, diag);
    EXPECT_GT(ph.inference_busy_s, 5.0 * pl.inference_busy_s);
    EXPECT_GT(ph.energy_wh, pl.energy_wh);
}

TEST(DutyCycle, InfeasibleWhenBatteryTooSmall)
{
    DutyCycleConfig config = default_config();
    config.battery_wh_per_day = 1.0; // idle draw alone exceeds this
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()), config);
    const auto plan = scheduler.plan(alexnet_desc(),
                                     diagnosis_desc(alexnet_desc()));
    EXPECT_FALSE(plan.feasible);
    EXPECT_LT(plan.energy_headroom_wh(config), 0.0);
}

TEST(DutyCycle, InfeasibleWhenWindowOverflows)
{
    DutyCycleConfig config = default_config();
    config.frames_per_day = 5e8; // no window fits this
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()), config);
    const auto plan = scheduler.plan(alexnet_desc(),
                                     diagnosis_desc(alexnet_desc()));
    EXPECT_FALSE(plan.feasible);
    EXPECT_GT(plan.day_utilization, 1.0);
}

TEST(DutyCycle, DiagnosisUsesBiggerBatchesThanInference)
{
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()),
                                 default_config());
    const auto plan = scheduler.plan(alexnet_desc(),
                                     diagnosis_desc(alexnet_desc()));
    // Latency-free night work batches much larger (Eq 9 limited).
    EXPECT_GT(plan.tasks.diagnosis_batch,
              plan.tasks.inference_batch);
}

TEST(DutyCycle, IdlePowerDominatesAtTinyWorkloads)
{
    DutyCycleConfig config = default_config();
    config.frames_per_day = 10;
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()), config);
    const auto plan = scheduler.plan(alexnet_desc(),
                                     diagnosis_desc(alexnet_desc()));
    // 24h of idle at 1.5 W is 36 Wh; busy time is negligible.
    EXPECT_NEAR(plan.energy_wh, 36.0, 1.0);
}

} // namespace
} // namespace insitu
