/**
 * @file
 * Tests for the deployment-side extensions: int8 weight quantization,
 * the battery/harvest model, and the versioned model registry with
 * regression rollback.
 */
#include <gtest/gtest.h>

#include "cloud/registry.h"
#include "data/synth.h"
#include "hw/battery.h"
#include "models/tiny.h"
#include "nn/linear.h"
#include "nn/quantize.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace insitu {
namespace {

Network
small_net(uint64_t seed)
{
    Rng rng(seed);
    TinyConfig config;
    config.num_permutations = 8;
    return make_tiny_inference(config, rng);
}

TEST(Quantize, RoundTripBoundedError)
{
    Network net = small_net(1);
    const QuantizedModel q = quantize_weights(net);
    // Symmetric int8: error bounded by scale/2 per parameter.
    double worst_scale = 0.0;
    for (const auto& p : q.params)
        worst_scale = std::max(worst_scale,
                               static_cast<double>(p.scale));
    EXPECT_LE(quantization_error(net, q), worst_scale * 0.5 + 1e-6);
}

TEST(Quantize, PayloadRoughlyQuarterOfFloat)
{
    Network net = small_net(2);
    const QuantizedModel q = quantize_weights(net);
    const double ratio =
        q.payload_bytes() / float_payload_bytes(net);
    EXPECT_GT(ratio, 0.24);
    EXPECT_LT(ratio, 0.30); // codes + per-param metadata
}

TEST(Quantize, DequantizeRestoresApproximateWeights)
{
    Network src = small_net(3);
    const QuantizedModel q = quantize_weights(src);
    Network dst = small_net(4);
    ASSERT_TRUE(dequantize_into(dst, q));
    auto ps = src.params();
    auto pd = dst.params();
    for (size_t i = 0; i < ps.size(); ++i) {
        const float scale = q.params[i].scale;
        for (int64_t j = 0; j < ps[i]->numel(); ++j)
            EXPECT_NEAR(pd[i]->value().at(j), ps[i]->value().at(j),
                        scale * 0.51f);
    }
}

TEST(Quantize, RejectsMismatchedNetwork)
{
    Network src = small_net(5);
    const QuantizedModel q = quantize_weights(src);
    Rng rng(6);
    Network other("other");
    other.emplace<Linear>("fc", 4, 2, rng);
    EXPECT_FALSE(dequantize_into(other, q));
}

TEST(Quantize, AccuracyLossIsSmall)
{
    // A trained model must survive int8 deployment.
    Rng rng(7);
    TinyConfig config;
    config.num_permutations = 8;
    SynthConfig synth;
    const Dataset train =
        make_dataset(synth, 300, Condition::ideal(), rng);
    Network net = make_tiny_inference(config, rng);
    Sgd opt({.lr = 0.01, .momentum = 0.9});
    train_epochs(net, opt, train.images, train.labels, 32, 3, rng);
    const double acc_before =
        evaluate_accuracy(net, train.images, train.labels);
    const QuantizedModel q = quantize_weights(net);
    ASSERT_TRUE(dequantize_into(net, q));
    const double acc_after =
        evaluate_accuracy(net, train.images, train.labels);
    EXPECT_GT(acc_after, acc_before - 0.05);
}

TEST(Battery, SustainableLoadNeverDepletes)
{
    BatterySpec spec;
    spec.capacity_wh = 100;
    spec.harvest_wh_per_day = 30;
    Battery battery(spec);
    for (int d = 0; d < 60; ++d)
        EXPECT_TRUE(battery.step_day(20.0));
    EXPECT_GT(battery.min_state_of_charge(), 0.5);
    EXPECT_EQ(battery.days_until_depletion(20.0), -1);
}

TEST(Battery, OverloadDepletes)
{
    BatterySpec spec;
    spec.capacity_wh = 100;
    spec.harvest_wh_per_day = 10;
    Battery battery(spec);
    const int predicted = battery.days_until_depletion(30.0);
    EXPECT_GT(predicted, 0);
    int survived = 0;
    while (battery.step_day(30.0)) ++survived;
    EXPECT_NEAR(survived, predicted, 1);
}

TEST(Battery, CloudyDaysReduceMargin)
{
    BatterySpec spec;
    spec.capacity_wh = 100;
    spec.harvest_wh_per_day = 25;
    Battery sunny(spec), cloudy(spec);
    for (int d = 0; d < 10; ++d) {
        sunny.step_day(20.0, 1.0);
        cloudy.step_day(20.0, 0.3);
    }
    EXPECT_GT(sunny.charge_wh(), cloudy.charge_wh());
}

TEST(Battery, ChargeClampedToCapacity)
{
    BatterySpec spec;
    spec.capacity_wh = 50;
    spec.harvest_wh_per_day = 100;
    Battery battery(spec);
    battery.step_day(0.0);
    EXPECT_LE(battery.charge_wh(), 50.0);
}

TEST(Registry, CommitRestoreRoundTrip)
{
    Network a = small_net(8);
    ModelRegistry registry;
    const int64_t id = registry.commit(a, "v1", 0.8, 1000);
    EXPECT_EQ(id, 1);
    // Clobber the weights, then restore.
    for (auto& p : a.params()) p->value().fill(0.0f);
    ASSERT_TRUE(registry.restore(id, a));
    double norm = 0.0;
    for (auto& p : a.params()) norm += p->value().squared_norm();
    EXPECT_GT(norm, 0.0);
}

TEST(Registry, UnknownVersionFails)
{
    Network a = small_net(9);
    ModelRegistry registry;
    EXPECT_FALSE(registry.restore(1, a));
    registry.commit(a, "v1", 0.5, 10);
    EXPECT_FALSE(registry.restore(2, a));
    EXPECT_FALSE(registry.restore(0, a));
}

TEST(Registry, BestAndLatestTracking)
{
    Network a = small_net(10);
    ModelRegistry registry;
    registry.commit(a, "v1", 0.6, 100);
    registry.commit(a, "v2", 0.8, 200);
    registry.commit(a, "v3", 0.7, 300);
    ASSERT_TRUE(registry.best().has_value());
    EXPECT_EQ(registry.best()->id, 2);
    EXPECT_EQ(registry.latest()->id, 3);
    EXPECT_EQ(registry.size(), 3u);
}

TEST(Registry, RollbackOnRegression)
{
    Network a = small_net(11);
    ModelRegistry registry;
    registry.commit(a, "good", 0.85, 100);
    // Simulate a bad update: weights change, accuracy tanks.
    const float good_w0 = a.params()[0]->value().at(0);
    a.params()[0]->value().at(0) = 999.0f;
    registry.commit(a, "bad", 0.40, 200);
    const auto rolled = registry.rollback_if_regressed(a, 0.05);
    ASSERT_TRUE(rolled.has_value());
    EXPECT_EQ(*rolled, 1);
    EXPECT_FLOAT_EQ(a.params()[0]->value().at(0), good_w0);
}

TEST(Registry, NoRollbackWithinTolerance)
{
    Network a = small_net(12);
    ModelRegistry registry;
    registry.commit(a, "v1", 0.80, 100);
    registry.commit(a, "v2", 0.78, 200);
    EXPECT_FALSE(
        registry.rollback_if_regressed(a, 0.05).has_value());
}

} // namespace
} // namespace insitu
