/**
 * @file
 * Integration tests of the Framework facade: bootstrap, autonomous
 * incremental steps, and planning.
 */
#include <gtest/gtest.h>

#include "core/framework.h"

namespace insitu {
namespace {

FrameworkConfig
small_config()
{
    FrameworkConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 4;
    c.update.lr = 0.02;
    c.pretrain_epochs = 2;
    c.seed = 5;
    return c;
}

TEST(Framework, BootstrapTrainsAndDeploys)
{
    Framework fw(small_config());
    Rng rng(6);
    SynthConfig synth;
    const Dataset initial =
        make_dataset(synth, 200, Condition::in_situ(0.2), rng);
    const double acc = fw.bootstrap(initial);
    EXPECT_GT(acc, 0.25); // far above 10% chance
    // Cloud inference and jigsaw trunk share the conv prefix.
    EXPECT_GE(fw.cloud().inference().shared_conv_prefix(
                  fw.cloud().jigsaw().trunk()),
              3u);
}

TEST(Framework, StepBeforeBootstrapDies)
{
    Framework fw(small_config());
    Rng rng(7);
    SynthConfig synth;
    const Dataset d = make_dataset(synth, 5, Condition::ideal(), rng);
    EXPECT_DEATH(fw.autonomous_step(d), "bootstrap");
}

TEST(Framework, AutonomousStepUploadsSubsetAndUpdates)
{
    Framework fw(small_config());
    Rng rng(8);
    SynthConfig synth;
    const Dataset initial =
        make_dataset(synth, 150, Condition::in_situ(0.2), rng);
    fw.bootstrap(initial);
    const Dataset stage =
        make_dataset(synth, 60, Condition::in_situ(0.35), rng);
    const LoopReport report = fw.autonomous_step(stage);
    EXPECT_EQ(report.node.acquired, 60);
    EXPECT_LE(report.uploaded, 60);
    EXPECT_EQ(report.uploaded, report.node.flagged);
    EXPECT_GE(report.accuracy_after, 0.0);
}

TEST(Framework, ModeFollowsAvailability)
{
    FrameworkConfig config = small_config();
    config.inference_always_on = false;
    EXPECT_EQ(Framework(config).working_mode(),
              WorkingMode::kSingleRunning);
    config.inference_always_on = true;
    EXPECT_EQ(Framework(config).working_mode(),
              WorkingMode::kCoRunning);
}

TEST(Framework, PlannersProduceValidConfigs)
{
    Framework fw(small_config());
    const SingleRunningPlan sp = fw.plan_single_running();
    EXPECT_GE(sp.inference_batch, 1);
    EXPECT_GE(sp.diagnosis_batch, 1);
    const CoRunningPlan cp = fw.plan_co_running();
    EXPECT_TRUE(cp.feasible);
    EXPECT_LE(cp.latency, fw.config().latency_requirement_s);
}

} // namespace
} // namespace insitu
