/**
 * @file
 * Unit tests for the tensor substrate: shapes, arithmetic, GEMM
 * variants, and the im2col/col2im lowering of the paper's Fig. 8.
 */
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillValueConstructor)
{
    Tensor t({4}, 2.5f);
    EXPECT_EQ(t.sum(), 10.0);
}

TEST(Tensor, DataConstructorChecksSize)
{
    EXPECT_DEATH(Tensor({2, 2}, std::vector<float>{1.0f}), "numel");
}

TEST(Tensor, At2dRowMajor)
{
    Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
    EXPECT_EQ(t.at(0, 2), 2.0f);
    EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, At4dNchw)
{
    Tensor t({1, 2, 2, 2});
    t.at(0, 1, 1, 0) = 9.0f;
    EXPECT_EQ(t.at(6), 9.0f); // ((0*2+1)*2+1)*2+0 = 6
}

TEST(Tensor, BoundsChecked)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.at(4), "out of range");
    EXPECT_DEATH(t.at(2, 0), "out of range");
}

TEST(Tensor, ReshapeInference)
{
    Tensor t({2, 6});
    const Tensor r = t.reshape({4, -1});
    EXPECT_EQ(r.dim(1), 3);
    EXPECT_DEATH(t.reshape({5, -1}), "infer");
}

TEST(Tensor, Slice0)
{
    Tensor t({3, 2}, {0, 1, 2, 3, 4, 5});
    const Tensor s = t.slice0(1, 3);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(s.at(0, 0), 2.0f);
    EXPECT_EQ(s.at(1, 1), 5.0f);
}

TEST(Tensor, ElementwiseArithmetic)
{
    Tensor a({2}, {1, 2});
    Tensor b({2}, {3, 4});
    const Tensor c = a + b;
    EXPECT_EQ(c.at(0), 4.0f);
    const Tensor d = b - a;
    EXPECT_EQ(d.at(1), 2.0f);
    const Tensor e = a * 2.0f;
    EXPECT_EQ(e.at(1), 4.0f);
}

TEST(Tensor, ShapeMismatchDies)
{
    Tensor a({2});
    Tensor b({3});
    EXPECT_DEATH(a += b, "shape mismatch");
}

TEST(Tensor, Reductions)
{
    Tensor t({4}, {-1, 5, 2, 0});
    EXPECT_EQ(t.min(), -1.0f);
    EXPECT_EQ(t.max(), 5.0f);
    EXPECT_EQ(t.mean(), 1.5);
    EXPECT_EQ(t.argmax(), 1);
    EXPECT_EQ(t.squared_norm(), 30.0);
}

TEST(Tensor, ArgmaxRows)
{
    Tensor t({2, 3}, {0, 9, 1, 7, 2, 3});
    const auto rows = t.argmax_rows();
    EXPECT_EQ(rows[0], 1);
    EXPECT_EQ(rows[1], 0);
}

TEST(Tensor, ShapeStr)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.shape_str(), "f32[2, 3, 4]");
}

TEST(Matmul, SmallKnownProduct)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, InnerDimMismatchDies)
{
    Tensor a({2, 3});
    Tensor b({2, 2});
    EXPECT_DEATH(matmul(a, b), "inner dims");
}

TEST(Matmul, TransposedVariantsAgree)
{
    Rng rng(5);
    Tensor a({4, 3});
    Tensor b({3, 5});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    const Tensor ref = matmul(a, b);

    // a stored transposed: at(k, m) = a(m, k).
    Tensor at({3, 4});
    for (int64_t m = 0; m < 4; ++m)
        for (int64_t k = 0; k < 3; ++k) at.at(k, m) = a.at(m, k);
    const Tensor via_ta = matmul_ta(at, b);

    // b stored transposed: bt(n, k) = b(k, n).
    Tensor bt({5, 3});
    for (int64_t k = 0; k < 3; ++k)
        for (int64_t n = 0; n < 5; ++n) bt.at(n, k) = b.at(k, n);
    const Tensor via_tb = matmul_tb(a, bt);

    for (int64_t i = 0; i < ref.numel(); ++i) {
        EXPECT_NEAR(via_ta.at(i), ref.at(i), 1e-5f);
        EXPECT_NEAR(via_tb.at(i), ref.at(i), 1e-5f);
    }
}

TEST(ConvGeometry, OutputDims)
{
    ConvGeometry g;
    g.in_channels = 3;
    g.in_h = g.in_w = 32;
    g.kernel = 5;
    g.stride = 2;
    g.pad = 2;
    EXPECT_EQ(g.out_h(), 16);
    EXPECT_EQ(g.out_w(), 16);
}

TEST(Im2col, IdentityKernelIsFlatten)
{
    // K=1, stride=1, pad=0: im2col is just the (C, H*W) view.
    Tensor x({1, 2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
    ConvGeometry g;
    g.in_channels = 2;
    g.in_h = g.in_w = 2;
    const Tensor cols = im2col(x, 0, g);
    EXPECT_EQ(cols.dim(0), 2);
    EXPECT_EQ(cols.dim(1), 4);
    for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(cols.at(i), x.at(i));
}

TEST(Im2col, ExtractsWindowsWithPadding)
{
    // 1x1x2x2 input, K=3, pad=1: the center of each window walks the
    // image; corners see zero padding.
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    ConvGeometry g;
    g.in_channels = 1;
    g.in_h = g.in_w = 2;
    g.kernel = 3;
    g.pad = 1;
    const Tensor cols = im2col(x, 0, g);
    EXPECT_EQ(cols.dim(0), 9);
    EXPECT_EQ(cols.dim(1), 4);
    // Center tap (row 4 of the 3x3 kernel) reproduces the image.
    EXPECT_EQ(cols.at(4, 0), 1.0f);
    EXPECT_EQ(cols.at(4, 1), 2.0f);
    EXPECT_EQ(cols.at(4, 2), 3.0f);
    EXPECT_EQ(cols.at(4, 3), 4.0f);
    // Top-left tap of the first window is padding.
    EXPECT_EQ(cols.at(0, 0), 0.0f);
    // Top-left tap of the last window sees pixel (0,0)=1.
    EXPECT_EQ(cols.at(0, 3), 1.0f);
}

TEST(Col2im, IsAdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> for random x, y: the scatter
    // must be the exact adjoint of the gather or conv gradients are
    // wrong.
    Rng rng(9);
    ConvGeometry g;
    g.in_channels = 2;
    g.in_h = 5;
    g.in_w = 4;
    g.kernel = 3;
    g.stride = 2;
    g.pad = 1;
    Tensor x({1, 2, 5, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const Tensor cols = im2col(x, 0, g);
    Tensor y(cols.shape());
    y.fill_uniform(rng, -1.0f, 1.0f);

    double lhs = 0.0;
    for (int64_t i = 0; i < cols.numel(); ++i)
        lhs += static_cast<double>(cols.at(i)) * y.at(i);

    Tensor back({1, 2, 5, 4});
    col2im_accumulate(y, back, 0, g);
    double rhs = 0.0;
    for (int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x.at(i)) * back.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Tensor, FillUniformRespectsRange)
{
    Rng rng(3);
    Tensor t({1000});
    t.fill_uniform(rng, -0.5f, 0.5f);
    EXPECT_GE(t.min(), -0.5f);
    EXPECT_LT(t.max(), 0.5f);
    EXPECT_NEAR(t.mean(), 0.0, 0.05);
}

} // namespace
} // namespace insitu
