/**
 * @file
 * Unit tests for the cloud side: the training cost model (layer
 * freezing must cut cost) and the model-update service (pretraining,
 * transfer, incremental updates, accounting).
 */
#include <gtest/gtest.h>

#include "cloud/cost_model.h"
#include "cloud/update_service.h"

namespace insitu {
namespace {

TEST(CostModel, EpochOpsScaleWithImages)
{
    TrainingCostModel cost(titan_x_spec());
    const NetworkDesc net = tinynet_desc();
    EXPECT_DOUBLE_EQ(cost.epoch_ops(net, 200, 0),
                     2.0 * cost.epoch_ops(net, 100, 0));
}

TEST(CostModel, FreezingReducesCost)
{
    // The weight-sharing payoff: updating only the suffix is cheaper.
    TrainingCostModel cost(titan_x_spec());
    const NetworkDesc net = tinynet_desc();
    const double full = cost.epoch_ops(net, 1000, 0);
    const double frozen3 = cost.epoch_ops(net, 1000, 3);
    const double frozen5 = cost.epoch_ops(net, 1000, 5);
    EXPECT_LT(frozen3, full);
    EXPECT_LT(frozen5, frozen3);
    // Forward still runs everywhere, so even full freezing costs
    // at least the forward pass.
    EXPECT_GT(frozen5, net.total_ops() * 1000 * 0.99);
}

TEST(CostModel, TrainCostConsistent)
{
    TrainingCostModel cost(titan_x_spec());
    const TrainingCost c = cost.train_cost(tinynet_desc(), 1000, 2, 0);
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_DOUBLE_EQ(c.energy_j,
                     c.seconds * titan_x_spec().power_watts);
    EXPECT_DOUBLE_EQ(
        c.ops, cost.epoch_ops(tinynet_desc(), 1000, 0) * 2.0);
}

TEST(CostModel, DiagnosisCostIsForwardOnly)
{
    TrainingCostModel cost(titan_x_spec());
    const NetworkDesc diag = diagnosis_desc(tinynet_desc());
    const TrainingCost d = cost.diagnosis_cost(diag, 1000);
    const TrainingCost t = cost.train_cost(diag, 1000, 1, 0);
    EXPECT_LT(d.ops, t.ops); // training adds backward work
}

TEST(UpdateService, PretrainImprovesPretextAccuracy)
{
    TinyConfig config;
    config.num_permutations = 8;
    ModelUpdateService service(config, titan_x_spec(), 11);
    Rng rng(12);
    SynthConfig synth;
    const Dataset raw =
        make_dataset(synth, 96, Condition::ideal(), rng);
    const double before = service.evaluate_pretext(raw.images);
    const double after = service.pretrain(raw.images, 4);
    EXPECT_GT(after, before + 0.1);
    EXPECT_GT(after, 1.5 / 8.0); // clearly better than chance
}

TEST(UpdateService, TransferCopiesTrunkConvs)
{
    TinyConfig config;
    ModelUpdateService service(config, titan_x_spec(), 13);
    service.transfer_from_pretext(3);
    const auto ti = service.jigsaw().trunk().conv_layer_indices();
    const auto ii = service.inference().conv_layer_indices();
    const auto tp = service.jigsaw().trunk().layer(ti[0]).params();
    const auto ip = service.inference().layer(ii[0]).params();
    for (int64_t i = 0; i < tp[0]->numel(); ++i)
        EXPECT_EQ(tp[0]->value().at(i), ip[0]->value().at(i));
    // Copied, not shared.
    EXPECT_NE(tp[0].get(), ip[0].get());
}

TEST(UpdateService, UpdateLearnsAndAccounts)
{
    TinyConfig config;
    ModelUpdateService service(config, titan_x_spec(), 17);
    Rng rng(18);
    SynthConfig synth;
    const Dataset data =
        make_dataset(synth, 300, Condition::ideal(), rng);
    UpdatePolicy policy;
    policy.epochs = 4;
    policy.lr = 0.02;
    const UpdateReport report = service.update(data, policy);
    EXPECT_EQ(report.images, 300);
    EXPECT_EQ(service.images_received(), 300);
    EXPECT_GT(report.modeled.energy_j, 0.0);
    EXPECT_GT(service.evaluate(data), 0.5);
}

TEST(UpdateService, FrozenUpdateKeepsPrefixIntact)
{
    TinyConfig config;
    ModelUpdateService service(config, titan_x_spec(), 19);
    Rng rng(20);
    SynthConfig synth;
    const Dataset data =
        make_dataset(synth, 64, Condition::ideal(), rng);

    const auto ii = service.inference().conv_layer_indices();
    const Tensor conv1_before =
        service.inference().layer(ii[0]).params()[0]->value();
    const Tensor conv5_before =
        service.inference().layer(ii[4]).params()[0]->value();

    UpdatePolicy policy;
    policy.frozen_convs = 3;
    policy.epochs = 1;
    service.update(data, policy);

    const Tensor conv1_after =
        service.inference().layer(ii[0]).params()[0]->value();
    const Tensor conv5_after =
        service.inference().layer(ii[4]).params()[0]->value();
    const Tensor d1 = conv1_after - conv1_before;
    const Tensor d5 = conv5_after - conv5_before;
    EXPECT_DOUBLE_EQ(d1.squared_norm(), 0.0);
    EXPECT_GT(d5.squared_norm(), 0.0);
    // The freeze is transient: params are unfrozen after the job.
    EXPECT_EQ(service.inference().trainable_param_count(),
              service.inference().param_count());
}

TEST(UpdateService, FrozenUpdateModeledCheaper)
{
    TinyConfig config;
    ModelUpdateService a(config, titan_x_spec(), 21);
    ModelUpdateService b(config, titan_x_spec(), 21);
    Rng rng(22);
    SynthConfig synth;
    const Dataset data =
        make_dataset(synth, 64, Condition::ideal(), rng);
    UpdatePolicy full;
    full.epochs = 1;
    UpdatePolicy frozen = full;
    frozen.frozen_convs = 3;
    const auto ra = a.update(data, full);
    const auto rb = b.update(data, frozen);
    EXPECT_LT(rb.modeled.energy_j, ra.modeled.energy_j);
    EXPECT_LT(rb.modeled.seconds, ra.modeled.seconds);
}

} // namespace
} // namespace insitu
