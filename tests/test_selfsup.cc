/**
 * @file
 * Unit tests for the jigsaw pretext machinery: permutation sets,
 * patch extraction/permutation, and the shared-trunk jigsaw network.
 */
#include <gtest/gtest.h>

#include "models/tiny.h"
#include "selfsup/jigsaw.h"
#include "selfsup/permutation.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(PermutationSet, AllEntriesAreValidPermutations)
{
    Rng rng(1);
    PermutationSet set(32, rng);
    EXPECT_EQ(set.size(), 32);
    for (int i = 0; i < set.size(); ++i)
        EXPECT_TRUE(PermutationSet::is_valid(set.perm(i)));
}

TEST(PermutationSet, FirstEntryIsIdentity)
{
    Rng rng(2);
    PermutationSet set(4, rng);
    for (int i = 0; i < PermutationSet::kTiles; ++i)
        EXPECT_EQ(set.perm(0)[static_cast<size_t>(i)], i);
}

TEST(PermutationSet, EntriesAreDistinct)
{
    Rng rng(3);
    PermutationSet set(64, rng);
    for (int i = 0; i < set.size(); ++i)
        for (int j = i + 1; j < set.size(); ++j)
            EXPECT_GT(PermutationSet::hamming(set.perm(i),
                                              set.perm(j)),
                      0);
}

TEST(PermutationSet, GreedySelectionSpreadsSet)
{
    // Hamming-greedy selection should keep the minimum pairwise
    // distance high (>= 6 of 9 for a 16-entry set is easy).
    Rng rng(4);
    PermutationSet set(16, rng);
    EXPECT_GE(set.min_hamming_distance(), 6);
}

TEST(PermutationSet, HammingIsMetricLike)
{
    PermutationSet::Perm a = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    PermutationSet::Perm b = {1, 0, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(PermutationSet::hamming(a, a), 0);
    EXPECT_EQ(PermutationSet::hamming(a, b), 2);
}

TEST(PermutationSet, IsValidRejectsDuplicates)
{
    PermutationSet::Perm bad = {0, 0, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_FALSE(PermutationSet::is_valid(bad));
    PermutationSet::Perm overflow = {0, 1, 2, 3, 4, 5, 6, 7, 9};
    EXPECT_FALSE(PermutationSet::is_valid(overflow));
}

TEST(Patches, ExtractTilesRowMajor)
{
    // 1-channel 6x6 image whose value encodes (y, x): tile (ty, tx)
    // must contain exactly the corresponding 2x2 region.
    Tensor img({1, 1, 6, 6});
    for (int64_t y = 0; y < 6; ++y)
        for (int64_t x = 0; x < 6; ++x)
            img.at(0, 0, y, x) = static_cast<float>(10 * y + x);
    const Tensor tiles = extract_patches(img);
    EXPECT_EQ(tiles.shape(),
              (std::vector<int64_t>{1, 9, 1, 2, 2}));
    // Tile 0 = rows 0-1, cols 0-1.
    EXPECT_EQ(tiles.at(0), 0.0f);
    EXPECT_EQ(tiles.at(1), 1.0f);
    EXPECT_EQ(tiles.at(2), 10.0f);
    // Tile 4 (center) starts at (2, 2).
    EXPECT_EQ(tiles.at(4 * 4), 22.0f);
    // Tile 8 (bottom-right) starts at (4, 4).
    EXPECT_EQ(tiles.at(8 * 4), 44.0f);
}

TEST(Patches, NonDivisibleSizeDies)
{
    Tensor img({1, 1, 7, 7});
    EXPECT_DEATH(extract_patches(img), "divisible by 3");
}

TEST(Patches, ApplyPermutationReordersTiles)
{
    Tensor img({1, 1, 6, 6});
    for (int64_t i = 0; i < img.numel(); ++i)
        img.at(i) = static_cast<float>(i);
    const Tensor tiles = extract_patches(img);
    PermutationSet::Perm perm = {8, 7, 6, 5, 4, 3, 2, 1, 0};
    const Tensor shuffled = apply_permutation(tiles, perm);
    // Slot 0 holds source tile 8.
    for (int64_t e = 0; e < 4; ++e)
        EXPECT_EQ(shuffled.at(e), tiles.at(8 * 4 + e));
    // Slot 4 holds source tile 4 (fixed point).
    for (int64_t e = 0; e < 4; ++e)
        EXPECT_EQ(shuffled.at(4 * 4 + e), tiles.at(4 * 4 + e));
}

TEST(Patches, IdentityPermutationIsNoop)
{
    Rng rng(5);
    Tensor img({2, 3, 6, 6});
    img.fill_uniform(rng, 0.0f, 1.0f);
    const Tensor tiles = extract_patches(img);
    PermutationSet::Perm id = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    const Tensor same = apply_permutation(tiles, id);
    for (int64_t i = 0; i < tiles.numel(); ++i)
        EXPECT_EQ(same.at(i), tiles.at(i));
}

TEST(JigsawBatch, LabelsMatchAppliedPermutations)
{
    Rng rng(6);
    PermutationSet set(8, rng);
    Tensor img({4, 1, 6, 6});
    img.fill_uniform(rng, 0.0f, 1.0f);
    const Tensor tiles = extract_patches(img);
    Rng batch_rng(7);
    const JigsawBatch batch = make_jigsaw_batch(img, set, batch_rng);
    ASSERT_EQ(batch.labels.size(), 4u);
    for (int64_t n = 0; n < 4; ++n) {
        const auto& perm = set.perm(
            static_cast<int>(batch.labels[static_cast<size_t>(n)]));
        const int64_t tile_elems = 4;
        for (int64_t slot = 0; slot < 9; ++slot) {
            const int64_t src = perm[static_cast<size_t>(slot)];
            for (int64_t e = 0; e < tile_elems; ++e) {
                EXPECT_EQ(
                    batch.patches.at((n * 9 + slot) * tile_elems + e),
                    tiles.at((n * 9 + src) * tile_elems + e));
            }
        }
    }
}

TEST(JigsawNetwork, ForwardShape)
{
    Rng rng(8);
    TinyConfig config;
    JigsawNetwork jig = make_tiny_jigsaw(config, rng);
    Tensor img({2, 3, 24, 24});
    img.fill_uniform(rng, 0.0f, 1.0f);
    PermutationSet set(config.num_permutations, rng);
    const JigsawBatch batch = make_jigsaw_batch(img, set, rng);
    const Tensor logits = jig.forward(batch.patches);
    EXPECT_EQ(logits.dim(0), 2);
    EXPECT_EQ(logits.dim(1), config.num_permutations);
}

TEST(JigsawNetwork, TrunkIsShareableWithInferenceNet)
{
    Rng rng(9);
    TinyConfig config;
    JigsawNetwork jig = make_tiny_jigsaw(config, rng);
    Network inference = make_tiny_inference(config, rng);
    inference.share_convs_from(jig.trunk(), 3);
    EXPECT_EQ(inference.shared_conv_prefix(jig.trunk()), 3u);
    // The shared conv weights are literally the same objects.
    const auto ii = inference.conv_layer_indices();
    const auto ti = jig.trunk().conv_layer_indices();
    EXPECT_EQ(inference.layer(ii[0]).params()[0].get(),
              jig.trunk().layer(ti[0]).params()[0].get());
    EXPECT_NE(inference.layer(ii[3]).params()[0].get(),
              jig.trunk().layer(ti[3]).params()[0].get());
}

TEST(JigsawNetwork, TrainingReducesPretextLoss)
{
    Rng rng(10);
    TinyConfig config;
    config.num_permutations = 4;
    JigsawNetwork jig = make_tiny_jigsaw(config, rng);
    PermutationSet set(config.num_permutations, rng);
    Tensor img({16, 3, 24, 24});
    img.fill_uniform(rng, 0.0f, 1.0f);
    Sgd opt({.lr = 0.05, .momentum = 0.9});
    double first = 0.0, last = 0.0;
    for (int step = 0; step < 30; ++step) {
        const JigsawBatch batch = make_jigsaw_batch(img, set, rng);
        const double loss = jig.train_batch(opt, batch);
        if (step == 0) first = loss;
        last = loss;
    }
    EXPECT_LT(last, first);
}

TEST(JigsawNetwork, ParamsAreDeduplicated)
{
    Rng rng(11);
    TinyConfig config;
    JigsawNetwork jig = make_tiny_jigsaw(config, rng);
    const auto params = jig.params();
    for (size_t i = 0; i < params.size(); ++i)
        for (size_t j = i + 1; j < params.size(); ++j)
            EXPECT_NE(params[i].get(), params[j].get());
    // 5 convs * 2 + 2 head linears * 2.
    EXPECT_EQ(params.size(), 14u);
}

TEST(TinyModels, TrunkFeatureWidthMatchesForward)
{
    Rng rng(12);
    TinyConfig config;
    Network trunk = make_tiny_trunk(config, rng);
    Tensor tile({1, 3, 8, 8});
    const Tensor feats = trunk.forward(tile);
    EXPECT_EQ(feats.dim(1), tiny_trunk_features(config));
}

TEST(TinyModels, InferenceHasFiveConvs)
{
    Rng rng(13);
    TinyConfig config;
    Network net = make_tiny_inference(config, rng);
    EXPECT_EQ(net.conv_layer_indices().size(), kTinyConvCount);
    Tensor x({2, 3, 24, 24});
    const Tensor y = net.forward(x);
    EXPECT_EQ(y.dim(1), config.num_classes);
}

} // namespace
} // namespace insitu
