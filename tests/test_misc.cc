/**
 * @file
 * Coverage sweep of smaller surfaces: logging levels, CSV/weight file
 * I/O, layer describe() strings, tensor edge cases, dataset slicing
 * edges, descriptor helpers, and spec invariants.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synth.h"
#include "models/descriptor.h"
#include "models/tiny.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lrn.h"
#include "nn/pooling.h"
#include "hw/spec.h"
#include "nn/serialize.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(Logging, LevelGatesAreOrdered)
{
    const LogLevel original = log_level();
    set_log_level(LogLevel::kSilent);
    EXPECT_EQ(log_level(), LogLevel::kSilent);
    inform("should be suppressed");
    warn("should be suppressed");
    debug("should be suppressed");
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(original);
}

TEST(Logging, CheckMacroFormatsContext)
{
    EXPECT_DEATH(
        [] {
            const int x = 3;
            INSITU_CHECK(x == 4, "x was ", x);
        }(),
        "x was 3");
}

TEST(Csv, WriteFileRoundTrip)
{
    CsvWriter w({"a", "b"});
    w.add_row({"1", "2"});
    const std::string path = "/tmp/insitu_csv_test.csv";
    ASSERT_TRUE(w.write_file(path));
    std::ifstream ifs(path);
    std::string line;
    std::getline(ifs, line);
    EXPECT_EQ(line, "a,b");
    std::getline(ifs, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath)
{
    CsvWriter w({"a"});
    EXPECT_FALSE(w.write_file("/nonexistent/dir/x.csv"));
}

TEST(WeightFiles, SaveLoadRoundTripOnDisk)
{
    Rng rng(1);
    TinyConfig config;
    config.num_permutations = 8;
    Network a = make_tiny_inference(config, rng);
    const std::string path = "/tmp/insitu_weights_test.bin";
    ASSERT_TRUE(save_weights_file(a, path));
    Network b = make_tiny_inference(config, rng);
    ASSERT_TRUE(load_weights_file(b, path));
    EXPECT_EQ(a.params()[0]->value().at(0),
              b.params()[0]->value().at(0));
    std::remove(path.c_str());
    EXPECT_FALSE(load_weights_file(b, path)); // gone now
}

TEST(Describe, LayerStringsMentionConfig)
{
    Rng rng(2);
    Conv2d conv("c", 3, 8, 5, 2, 2, rng);
    EXPECT_NE(conv.describe().find("3->8"), std::string::npos);
    EXPECT_NE(conv.describe().find("k5"), std::string::npos);
    Linear fc("f", 10, 4, rng);
    EXPECT_NE(fc.describe().find("10->4"), std::string::npos);
    MaxPool2d mp("m", 2, 2);
    EXPECT_NE(mp.describe().find("maxpool"), std::string::npos);
    AvgPool2d ap("a", 3, 3);
    EXPECT_NE(ap.describe().find("avgpool"), std::string::npos);
    LocalResponseNorm lrn("n");
    EXPECT_NE(lrn.describe().find("lrn"), std::string::npos);
}

TEST(Layer, SetParamOnParamlessLayerPanics)
{
    MaxPool2d pool("p", 2, 2);
    auto p = std::make_shared<Parameter>("x", std::vector<int64_t>{1});
    EXPECT_DEATH(pool.set_param(0, p), "no parameter slots");
}

TEST(Conv2d, SetParamRejectsWrongShape)
{
    Rng rng(3);
    Conv2d conv("c", 2, 4, 3, 1, 1, rng);
    auto bad =
        std::make_shared<Parameter>("w", std::vector<int64_t>{1, 1});
    EXPECT_DEATH(conv.set_param(0, bad), "shape mismatch");
    EXPECT_DEATH(conv.set_param(2, bad), "two parameter slots");
}

TEST(Tensor, EmptySliceAndZeroDataset)
{
    Tensor t({4, 2});
    const Tensor s = t.slice0(2, 2);
    EXPECT_EQ(s.dim(0), 0);
    EXPECT_TRUE(s.empty());
    Rng rng(4);
    SynthConfig synth;
    const Dataset d = make_dataset(synth, 0, Condition::ideal(), rng);
    EXPECT_EQ(d.size(), 0);
}

TEST(Tensor, NegativeDimIndexing)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-3), 2);
    EXPECT_DEATH(t.dim(3), "out of range");
}

TEST(Dataset, SliceBoundsChecked)
{
    Rng rng(5);
    SynthConfig synth;
    const Dataset d = make_dataset(synth, 5, Condition::ideal(), rng);
    EXPECT_DEATH(dataset_slice(d, 3, 7), "range");
}

TEST(Descriptors, JigsawHeadIsFcnOnly)
{
    const NetworkDesc head = jigsaw_head_desc();
    EXPECT_TRUE(head.conv_layers().empty());
    EXPECT_EQ(head.fcn_layers().size(), 3u);
    EXPECT_EQ(head.layers.front().n, 9 * 1024);
    EXPECT_EQ(head.layers.back().m, 100);
}

TEST(Descriptors, TotalsAreSums)
{
    const NetworkDesc d = alexnet_desc();
    double ops = 0.0, weights = 0.0;
    for (const auto& l : d.layers) {
        ops += l.ops();
        weights += l.weight_count();
    }
    EXPECT_DOUBLE_EQ(d.total_ops(), ops);
    EXPECT_DOUBLE_EQ(d.total_weights(), weights);
}

TEST(Specs, PowerHierarchiesSane)
{
    EXPECT_LT(tx1_spec().power_watts, vx690t_spec().power_watts);
    EXPECT_LT(vx690t_spec().power_watts, titan_x_spec().power_watts);
    EXPECT_LT(tx1_spec().idle_watts, tx1_spec().power_watts);
    EXPECT_GT(lan_uplink_spec().bandwidth_bps,
              iot_uplink_spec().bandwidth_bps);
    EXPECT_LT(lan_uplink_spec().energy_per_byte,
              iot_uplink_spec().energy_per_byte);
}

TEST(TinyConfig, WidthScalesParameterCount)
{
    Rng rng(6);
    TinyConfig narrow, wide;
    narrow.width = 0.5;
    wide.width = 2.0;
    Network a = make_tiny_inference(narrow, rng);
    Network b = make_tiny_inference(wide, rng);
    EXPECT_GT(b.param_count(), 3 * a.param_count());
}

TEST(TinyConfig, TrunkFeaturesConsistentAcrossWidths)
{
    for (double width : {0.5, 1.0, 2.0}) {
        TinyConfig config;
        config.width = width;
        Rng rng(7);
        Network trunk = make_tiny_trunk(config, rng);
        Tensor tile({1, 3, 8, 8});
        EXPECT_EQ(trunk.forward(tile).dim(1),
                  tiny_trunk_features(config))
            << width;
    }
}

} // namespace
} // namespace insitu
