/**
 * @file
 * Unit tests for the analytical device models: Eqs (2)-(9) on the
 * GPU, Eqs (4), (10)-(13) on the FPGA, and the qualitative trends
 * the paper's characterization (Figs 11, 12, 14, 15, 16) rests on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "hw/fpga_model.h"
#include "hw/gpu_model.h"
#include "hw/spec.h"

namespace insitu {
namespace {

LayerDesc
sample_conv()
{
    LayerDesc l;
    l.name = "conv2";
    l.type = LayerType::kConv;
    l.n = 96;
    l.m = 256;
    l.k = 5;
    l.r = 27;
    l.c = 27;
    return l;
}

LayerDesc
sample_fcn()
{
    LayerDesc l;
    l.name = "fc6";
    l.type = LayerType::kFcn;
    l.n = 9216;
    l.m = 4096;
    return l;
}

TEST(Specs, CatalogSanity)
{
    EXPECT_EQ(tx1_spec().cuda_cores, 256);
    EXPECT_EQ(titan_x_spec().cuda_cores, 3072);
    EXPECT_EQ(vx690t_spec().dsp_slices, 3600);
    EXPECT_GT(titan_x_spec().peak_ops(), tx1_spec().peak_ops());
}

TEST(Link, TransferScalesWithBytes)
{
    const LinkSpec link = iot_uplink_spec();
    EXPECT_GT(link.transfer_seconds(2e6), link.transfer_seconds(1e6));
    EXPECT_DOUBLE_EQ(link.transfer_energy(1e6),
                     1e6 * link.energy_per_byte);
}

TEST(GpuModel, GridSizeMatchesEquationTwo)
{
    GpuModel gpu(tx1_spec());
    const LayerDesc l = sample_conv();
    // ceil(256/64) * ceil(27*27*1/64) = 4 * 12 = 48.
    EXPECT_DOUBLE_EQ(gpu.grid_size(l, 1), 48.0);
    // Batching multiplies the data-matrix columns.
    EXPECT_DOUBLE_EQ(gpu.grid_size(l, 4), 4.0 * std::ceil(729.0 * 4 / 64));
}

TEST(GpuModel, UtilizationMatchesEquationThree)
{
    GpuModel gpu(tx1_spec()); // maxBlocks = 32
    const LayerDesc l = sample_conv();
    // grid 48 -> 48 / (32 * ceil(48/32)) = 48/64 = 0.75.
    EXPECT_DOUBLE_EQ(gpu.utilization(l, 1), 0.75);
}

TEST(GpuModel, UtilizationImprovesWithBatchOnConv)
{
    // Fig 15: GPU utilization of CONV layers rises with batch size,
    // because batching widens the data matrix (Eq 2) and fills the
    // trailing wave of thread blocks (Eq 3).
    GpuModel gpu(tx1_spec());
    LayerDesc l = sample_conv();
    l.m = 96; // conv-like layer with a small grid at batch 1
    l.r = l.c = 13;
    EXPECT_LT(gpu.utilization(l, 1), gpu.utilization(l, 16));
    EXPECT_LE(gpu.utilization(l, 16), 1.0);
}

TEST(GpuModel, FcnIsMemoryBoundAtBatchOne)
{
    // Fig 12's root cause: matrix-vector FCN cannot reuse weights.
    GpuModel gpu(tx1_spec());
    const auto t = gpu.layer_time(sample_fcn(), 1);
    EXPECT_TRUE(t.memory_bound);
}

TEST(GpuModel, FcnBecomesComputeBoundAtLargeBatch)
{
    GpuModel gpu(tx1_spec());
    const auto t = gpu.layer_time(sample_fcn(), 256);
    EXPECT_FALSE(t.memory_bound);
}

TEST(GpuModel, LatencyIncreasesWithBatch)
{
    // Fig 11, left: batch latency grows with batch size.
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    double prev = 0.0;
    for (int64_t b : {1, 2, 4, 8, 16, 32}) {
        const double t = gpu.network_latency(net, b);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(GpuModel, PerfPerWattImprovesWithBatch)
{
    // Fig 11, right: energy-efficiency improves with batch on GPU.
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    EXPECT_GT(gpu.perf_per_watt(net, 32), gpu.perf_per_watt(net, 1));
}

TEST(GpuModel, FcnShareOfRuntimeShrinksWithBatch)
{
    // Fig 12: FCN layers are up to ~50% of runtime at batch 1 and
    // shrink as batching amortizes their weights.
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    auto fcn_share = [&](int64_t b) {
        const double conv = gpu.conv_latency(net, b);
        const double fcn = gpu.fcn_latency(net, b);
        return fcn / (conv + fcn);
    };
    EXPECT_GT(fcn_share(1), 0.3);
    EXPECT_LT(fcn_share(64), fcn_share(1));
}

TEST(GpuModel, AlexNetBatch1LatencyPlausible)
{
    // TX1 runs AlexNet inference in the tens of milliseconds.
    GpuModel gpu(tx1_spec());
    const double t = gpu.network_latency(alexnet_desc(), 1);
    EXPECT_GT(t, 0.005);
    EXPECT_LT(t, 0.2);
}

TEST(GpuModel, MemoryModelMonotoneAndBounding)
{
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    EXPECT_GT(gpu.memory_required(net, 8),
              gpu.memory_required(net, 1));
    const int64_t max_b = gpu.max_batch_for_memory(net);
    EXPECT_GE(max_b, 1);
    EXPECT_LE(gpu.memory_required(net, max_b),
              gpu.spec().mem_capacity);
    EXPECT_GT(gpu.memory_required(net, max_b + 1),
              gpu.spec().mem_capacity);
}

TEST(GpuModel, CorunSlowdownSaturatesNearThree)
{
    // Fig 16: up to ~3x inference slowdown under co-running.
    GpuModel gpu(tx1_spec());
    EXPECT_DOUBLE_EQ(gpu.corun_slowdown(1.0, 0.0), 1.0);
    EXPECT_NEAR(gpu.corun_slowdown(1.0, 1.0), 2.0, 1e-9);
    EXPECT_LT(gpu.corun_slowdown(1.0, 100.0), 3.0);
    EXPECT_GT(gpu.corun_slowdown(1.0, 100.0), 2.9);
}

TEST(FpgaModel, UtilizationMatchesEquationFour)
{
    LayerDesc l = sample_conv(); // N=96, M=256
    EngineUnroll e{32, 64};
    // 96*256 / (32*64*ceil(96/32)*ceil(256/64)) = 24576/24576 = 1.
    EXPECT_DOUBLE_EQ(FpgaModel::utilization(l, e), 1.0);
    EngineUnroll bad{36, 73};
    EXPECT_LT(FpgaModel::utilization(l, bad), 1.0);
}

TEST(FpgaModel, FpgaUtilizationIndependentOfBatch)
{
    // Fig 15: Eq (4) has no batch term — this is structural, the
    // model cannot even express a batch effect on conv utilization.
    LayerDesc l = sample_conv();
    EngineUnroll e{16, 16};
    const double u = FpgaModel::utilization(l, e);
    EXPECT_GT(u, 0.5);
    EXPECT_LE(u, 1.0);
}

TEST(FpgaModel, ConvTimeUnrolledScalesInverselyWithUnroll)
{
    FpgaModel fpga(vx690t_spec());
    const LayerDesc l = sample_conv();
    const double t_small = fpga.conv_time_unrolled(l, {8, 8});
    const double t_big = fpga.conv_time_unrolled(l, {32, 32});
    EXPECT_GT(t_small, 10.0 * t_big);
}

TEST(FpgaModel, FcnBatchingHelpsOnlyWithWeightReuse)
{
    // Fig 13/14: without the batch loop FPGA FCN efficiency is flat;
    // with it, per-image time drops.
    FpgaModel fpga(vx690t_spec());
    const LayerDesc l = sample_fcn();
    EngineUnroll e{8, 10};
    const double per_image_nobatch_1 =
        fpga.fcn_time(l, e, 1, false);
    const double per_image_nobatch_32 =
        fpga.fcn_time(l, e, 32, false) / 32.0;
    EXPECT_NEAR(per_image_nobatch_32, per_image_nobatch_1,
                per_image_nobatch_1 * 0.1);
    const double per_image_batch_32 =
        fpga.fcn_time(l, e, 32, true) / 32.0;
    EXPECT_LT(per_image_batch_32, 0.5 * per_image_nobatch_1);
}

TEST(FpgaModel, WssConvTimeMatchesEquationEleven)
{
    FpgaModel fpga(vx690t_spec());
    LayerDesc l = sample_conv();
    WssConfig config;
    config.tr = config.tc = 14;
    config.group_size = 4;
    // ceil(256/4)*96*25*ceil(27/14)*ceil(27/14) = 64*96*25*2*2.
    const double cycles = 64.0 * 96 * 25 * 2 * 2;
    EXPECT_DOUBLE_EQ(fpga.conv_time_wss(l, config),
                     cycles / fpga.spec().freq_hz);
}

TEST(FpgaModel, DspBudgetEquationTen)
{
    FpgaModel fpga(vx690t_spec()); // 3600 DSPs
    WssConfig config;
    config.tr = config.tc = 14;
    config.nws = EngineUnroll{8, 10};
    // One WSS = 196 + 9*49 = 637 DSPs.
    EXPECT_EQ(FpgaModel::dsp_per_wss(config), 637);
    config.group_size = 5; // 3185 + 80 fits
    EXPECT_TRUE(fpga.fits_dsp(config));
    config.group_size = 6; // 3822 + 80 does not
    EXPECT_FALSE(fpga.fits_dsp(config));
}

TEST(FpgaModel, PipelineThroughputRisesWithBatchUntilFcnBound)
{
    FpgaModel fpga(vx690t_spec());
    const NetworkDesc net = alexnet_desc();
    WssConfig config;
    config.group_size = 4;
    config.nws = EngineUnroll{8, 10};
    config.batch = 1;
    const double tp1 = fpga.pipeline_throughput(net, config);
    config.batch = 8;
    const double tp8 = fpga.pipeline_throughput(net, config);
    EXPECT_GT(tp8, tp1);
    // Latency is twice the stage period.
    EXPECT_DOUBLE_EQ(fpga.pipeline_latency(net, config),
                     2.0 * fpga.pipeline_period(net, config));
}

TEST(GpuVsFpga, GpuMoreEnergyEfficientSingleRunning)
{
    // §IV-A2: "GPU's energy-efficiency is always better than FPGA
    // when only one AI task is running" — compare images/s/W of
    // AlexNet on both single-task deployments.
    GpuModel gpu(tx1_spec());
    FpgaModel fpga(vx690t_spec());
    const NetworkDesc net = alexnet_desc();
    const double gpu_eff = gpu.perf_per_watt(net, 32);
    // FPGA single-task: all conv on a full-budget engine + FCN.
    EngineUnroll conv_engine{32, 64};
    double fpga_time = 0.0;
    for (const auto& l : net.conv_layers())
        fpga_time += fpga.conv_time_unrolled(l, conv_engine);
    fpga_time *= 32.0;
    fpga_time += fpga.all_fcn_time(net, {8, 10}, 32, true);
    const double fpga_eff =
        32.0 / fpga_time / fpga.spec().power_watts;
    EXPECT_GT(gpu_eff, fpga_eff);
}

// ---- self-calibration of the analytical time model (serving) ------

/** Synthetic host: the analytical model under a known affine error. */
std::vector<BatchObservation>
affine_observations(const GpuModel& gpu, const NetworkDesc& net,
                    double scale, double overhead,
                    const std::vector<int64_t>& batches)
{
    std::vector<BatchObservation> obs;
    for (int64_t b : batches) {
        BatchObservation o;
        o.batch = b;
        o.mean_seconds = scale * gpu.network_latency(net, b) + overhead;
        o.count = 4;
        obs.push_back(o);
    }
    return obs;
}

TEST(GpuCalibration, RecoversAffineConstantsExactly)
{
    // Noise-free measurements that ARE an affine transform of the
    // model must be fit exactly (the perf4sight-style regression has
    // a closed-form optimum here).
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const auto obs =
        affine_observations(gpu, net, 1.7, 0.003, {1, 2, 4, 8, 16});
    const GpuCalibration fit = fit_calibration(gpu, net, obs);
    EXPECT_NEAR(fit.time_scale, 1.7, 1e-9);
    EXPECT_NEAR(fit.overhead_s, 0.003, 1e-12);
    EXPECT_EQ(fit.samples, 20);
}

TEST(GpuCalibration, CalibratedPredictionsMatchMeasurements)
{
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const auto obs =
        affine_observations(gpu, net, 1.4, 0.002, {1, 4, 16});
    gpu.set_calibration(fit_calibration(gpu, net, obs));
    for (const auto& o : obs) {
        EXPECT_NEAR(gpu.predicted_batch_latency(net, o.batch),
                    o.mean_seconds, 1e-9);
        EXPECT_NEAR(gpu.residual(net, o.batch, o.mean_seconds), 0.0,
                    1e-9);
    }
    // network_latency() itself stays uncalibrated (the Eq 5 model).
    EXPECT_LT(gpu.network_latency(net, 4),
              gpu.predicted_batch_latency(net, 4));
}

TEST(GpuCalibration, HeldOutBatchSizeWithinTolerance)
{
    // Fit on {1..8}, predict 32: the affine correction generalizes
    // across batch sizes because the model supplies the shape.
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const double scale = 1.55, overhead = 0.0045;
    gpu.set_calibration(fit_calibration(
        gpu, net,
        affine_observations(gpu, net, scale, overhead, {1, 2, 4, 8})));
    const double truth =
        scale * gpu.network_latency(net, 32) + overhead;
    EXPECT_NEAR(gpu.predicted_batch_latency(net, 32), truth,
                0.01 * truth);
}

TEST(GpuCalibration, ResidualsMonotoneInMeasurementError)
{
    // Same batch, growing measured time => growing signed residual;
    // exact measurement => zero.
    GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const double base = gpu.predicted_batch_latency(net, 8);
    double prev = gpu.residual(net, 8, base * 0.9);
    EXPECT_LT(prev, 0.0);
    EXPECT_NEAR(gpu.residual(net, 8, base), 0.0, 1e-12);
    for (double f : {1.05, 1.2, 1.5}) {
        const double r = gpu.residual(net, 8, base * f);
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(GpuCalibration, DegenerateInputsFallBack)
{
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    // No observations: identity.
    const GpuCalibration none = fit_calibration(gpu, net, {});
    EXPECT_TRUE(none.is_identity());

    // A single batch size is rank-deficient for the 2-parameter fit:
    // fall back to a pure scale (still matching that point).
    const auto one =
        affine_observations(gpu, net, 2.0, 0.0, {8});
    const GpuCalibration fit = fit_calibration(gpu, net, one);
    EXPECT_NEAR(fit.time_scale, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit.overhead_s, 0.0);
}

} // namespace
} // namespace insitu
