/**
 * @file
 * Unit tests for the async serving runtime: the bursty load
 * generator, the EDF admission queue, the node's double-buffered
 * weight swaps, the online batch planner, the calibration bridge and
 * the end-to-end runtime invariants (determinism, no-tear swaps,
 * planner-beats-static).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/update_service.h"
#include "iot/node.h"
#include "serving/calibrate.h"
#include "serving/scenarios.h"

namespace insitu::serving {
namespace {

TrafficMix
small_mix()
{
    TrafficMix mix;
    mix.name = "test";
    mix.duration_s = 30.0;
    mix.calm_rate_hz = 10.0;
    mix.burst_rate_mult = 6.0;
    mix.mean_calm_s = 4.0;
    mix.mean_burst_s = 1.5;
    mix.classes = {{"fast", 0.1, 0.5}, {"slow", 1.0, 0.5}};
    mix.seed = 11;
    return mix;
}

// ---- traffic generator --------------------------------------------

TEST(Traffic, ArrivalsAreDeterministic)
{
    const TrafficMix mix = small_mix();
    const auto a = generate_arrivals(mix);
    const auto b = generate_arrivals(mix);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].cls, b[i].cls);
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_DOUBLE_EQ(a[i].deadline_s, b[i].deadline_s);
    }
}

TEST(Traffic, StreamStructureHolds)
{
    const TrafficMix mix = small_mix();
    const auto arrivals = generate_arrivals(mix);
    ASSERT_FALSE(arrivals.empty());
    double prev = 0.0;
    for (size_t i = 0; i < arrivals.size(); ++i) {
        const Request& r = arrivals[i];
        EXPECT_EQ(r.id, static_cast<int64_t>(i)); // ids dense from 0
        EXPECT_GT(r.arrival_s, prev);             // strictly ordered
        EXPECT_LT(r.arrival_s, mix.duration_s);
        ASSERT_GE(r.cls, 0);
        ASSERT_LT(r.cls, 2);
        // Absolute deadline = arrival + class relative deadline.
        EXPECT_DOUBLE_EQ(r.deadline_s,
                         r.arrival_s +
                             mix.classes[static_cast<size_t>(r.cls)]
                                 .deadline_s);
        prev = r.arrival_s;
    }
    // Both classes actually drawn (weights 0.5/0.5 over hundreds).
    int64_t fast = 0;
    for (const auto& r : arrivals) fast += r.cls == 0 ? 1 : 0;
    EXPECT_GT(fast, 0);
    EXPECT_LT(fast, static_cast<int64_t>(arrivals.size()));
}

TEST(Traffic, BurstWindowsCarryHigherRate)
{
    const TrafficMix mix = small_mix();
    std::vector<BurstWindow> bursts;
    const auto arrivals = generate_arrivals(mix, &bursts);
    ASSERT_FALSE(bursts.empty());

    double burst_time = 0.0;
    int64_t burst_arrivals = 0;
    for (const auto& w : bursts) {
        EXPECT_GE(w.begin_s, 0.0);
        EXPECT_GT(w.end_s, w.begin_s);
        EXPECT_LE(w.end_s, mix.duration_s);
        burst_time += w.end_s - w.begin_s;
        for (const auto& r : arrivals)
            if (r.arrival_s >= w.begin_s && r.arrival_s < w.end_s)
                ++burst_arrivals;
    }
    const double calm_time = mix.duration_s - burst_time;
    const double calm_arrivals =
        static_cast<double>(arrivals.size()) -
        static_cast<double>(burst_arrivals);
    ASSERT_GT(burst_time, 0.0);
    ASSERT_GT(calm_time, 0.0);
    // Empirical burst rate must clearly exceed the calm rate (the
    // configured ratio is 6x; demand at least 2x to stay robust).
    EXPECT_GT(static_cast<double>(burst_arrivals) / burst_time,
              2.0 * calm_arrivals / calm_time);
}

// ---- admission queue ----------------------------------------------

Request
make_request(int64_t id, double arrival, double deadline)
{
    Request r;
    r.id = id;
    r.cls = 0;
    r.arrival_s = arrival;
    r.deadline_s = deadline;
    return r;
}

TEST(AdmissionQueue, PopsInEdfOrder)
{
    AdmissionQueue q(8);
    // Admission order is arrival order; deadlines are shuffled.
    q.admit(make_request(0, 0.0, 0.9));
    q.admit(make_request(1, 0.1, 0.3));
    q.admit(make_request(2, 0.2, 0.6));
    q.admit(make_request(3, 0.3, 0.3)); // deadline tie: id breaks it

    const auto deadlines = q.edf_deadlines(3);
    ASSERT_EQ(deadlines.size(), 3u);
    EXPECT_DOUBLE_EQ(deadlines[0], 0.3);
    EXPECT_DOUBLE_EQ(deadlines[1], 0.3);
    EXPECT_DOUBLE_EQ(deadlines[2], 0.6);

    const auto batch = q.pop_edf(3);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 1);
    EXPECT_EQ(batch[1].id, 3);
    EXPECT_EQ(batch[2].id, 2);
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_EQ(q.pop_edf(5).size(), 1u); // n > depth: returns depth
    EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueue, DropsAtCapacity)
{
    AdmissionQueue q(2);
    EXPECT_TRUE(q.admit(make_request(0, 0.0, 1.0)));
    EXPECT_TRUE(q.admit(make_request(1, 0.0, 2.0)));
    EXPECT_FALSE(q.admit(make_request(2, 0.0, 0.5)));
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.stats().arrived, 3);
    EXPECT_EQ(q.stats().admitted, 2);
    EXPECT_EQ(q.stats().dropped_capacity, 1);
}

TEST(AdmissionQueue, ShedsOnlyExpired)
{
    AdmissionQueue q(8);
    q.admit(make_request(0, 0.0, 0.2));
    q.admit(make_request(1, 0.0, 0.4));
    q.admit(make_request(2, 0.0, 0.8));
    const auto shed = q.shed_expired(0.5);
    ASSERT_EQ(shed.size(), 2u);
    EXPECT_EQ(shed[0].id, 0);
    EXPECT_EQ(shed[1].id, 1);
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_EQ(q.stats().shed_expired, 2);
    // Deadline exactly now is not yet expired.
    EXPECT_TRUE(q.shed_expired(0.8).empty());
}

// ---- double-buffered weight swaps on the node ---------------------

float
first_fc_weight(InsituNode& node)
{
    const auto ii =
        node.inference().network().conv_layer_indices();
    return node.inference()
        .network()
        .layer(ii[4])
        .params()[0]
        ->value()
        .at(0);
}

TEST(DoubleBuffer, StageIsInvisibleUntilCommit)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 10);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    11);

    for (auto& p : cloud.inference().params()) p->value().fill(0.5f);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint old = node.checkpoint();
    const uint64_t v_old = node.model_version();
    EXPECT_GT(v_old, 0u);

    // New cloud weights deploy... but staged, not live.
    for (auto& p : cloud.inference().params()) p->value().fill(0.25f);
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint next = node.checkpoint();
    EXPECT_TRUE(node.restore(old));
    const uint64_t v_live = node.model_version();

    const uint64_t v_staged = node.stage_deployment(next);
    EXPECT_TRUE(node.has_staged_deployment());
    EXPECT_EQ(node.staged_version(), v_staged);
    EXPECT_GT(v_staged, v_live);
    EXPECT_EQ(node.model_version(), v_live); // live untouched
    EXPECT_EQ(first_fc_weight(node), 0.5f);  // weights untouched

    // The batch boundary: commit makes it live, atomically.
    EXPECT_TRUE(node.commit_staged_deployment());
    EXPECT_FALSE(node.has_staged_deployment());
    EXPECT_EQ(node.model_version(), v_staged);
    EXPECT_EQ(first_fc_weight(node), 0.25f);
}

TEST(DoubleBuffer, LastStagedUpdateWins)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 12);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    13);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());

    const uint64_t v1 = node.stage_deployment(node.checkpoint());
    const uint64_t v2 = node.stage_deployment(node.checkpoint());
    EXPECT_GT(v2, v1);
    EXPECT_EQ(node.staged_version(), v2);
    EXPECT_TRUE(node.commit_staged_deployment());
    EXPECT_EQ(node.model_version(), v2);
}

TEST(DoubleBuffer, BadCheckpointCommitLeavesNodeUntouched)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 14);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    15);
    for (auto& p : cloud.inference().params()) p->value().fill(0.5f);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const uint64_t v_live = node.model_version();

    NodeCheckpoint bad = node.checkpoint();
    bad.inference_blob = "not a weight blob";
    node.stage_deployment(bad);
    EXPECT_FALSE(node.commit_staged_deployment());
    EXPECT_FALSE(node.has_staged_deployment()); // not retried
    EXPECT_EQ(node.model_version(), v_live);
    EXPECT_EQ(first_fc_weight(node), 0.5f);
}

// ---- batch planner ------------------------------------------------

TEST(Planner, StaticModeIgnoresDeadlines)
{
    PlannerConfig cfg;
    cfg.mode = PlannerMode::kStatic;
    cfg.static_batch = 4;
    const BatchPlanner planner(cfg);
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    const std::vector<double> ten(10, -1.0); // all long expired
    EXPECT_EQ(planner.plan(gpu, net, 0.0, ten, 0.0).batch, 4);
    const std::vector<double> two(2, -1.0);
    EXPECT_EQ(planner.plan(gpu, net, 0.0, two, 0.0).batch, 2);
}

TEST(Planner, PicksLargestDeadlineFeasiblePrefix)
{
    PlannerConfig cfg;
    cfg.max_batch = 8;
    const BatchPlanner planner(cfg);
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    // Generous front deadline: take the whole queue.
    const std::vector<double> relaxed(6, 100.0);
    const BatchDecision all = planner.plan(gpu, net, 0.0, relaxed, 0.0);
    EXPECT_EQ(all.batch, 6);
    EXPECT_TRUE(all.deadline_feasible);

    // Front slack strictly between the predicted batch-1 and batch-2
    // times: only batch 1 fits.
    const double t1 =
        cfg.safety * gpu.predicted_batch_latency(net, 1);
    const double t2 =
        cfg.safety * gpu.predicted_batch_latency(net, 2);
    ASSERT_LT(t1, t2);
    std::vector<double> tight(6, 100.0);
    tight[0] = 0.5 * (t1 + t2);
    const BatchDecision one = planner.plan(gpu, net, 0.0, tight, 0.0);
    EXPECT_EQ(one.batch, 1);
    EXPECT_TRUE(one.deadline_feasible);
    EXPECT_NEAR(one.predicted_s, t1, 1e-12);
}

TEST(Planner, DrainModeMaximizesThroughput)
{
    PlannerConfig cfg;
    cfg.max_batch = 8;
    const BatchPlanner planner(cfg);
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    // Every deadline hopeless: drain at max throughput. For the Eq 5
    // model, images/s grows with batch, so the cap wins.
    const std::vector<double> hopeless(12, -1.0);
    const BatchDecision d = planner.plan(gpu, net, 0.0, hopeless, 0.0);
    EXPECT_FALSE(d.deadline_feasible);
    EXPECT_EQ(d.batch, 8);
}

TEST(Planner, CorunInterferenceShrinksTheBatch)
{
    PlannerConfig cfg;
    cfg.max_batch = 16;
    const BatchPlanner planner(cfg);
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    // A front deadline strictly between the batch-16 prediction
    // alone and under interference: without the co-runner the full
    // batch fits, with it the planner must back off.
    const double diag_ops = diagnosis_desc(net).total_ops() * 9.0;
    const double t16 =
        cfg.safety * gpu.predicted_batch_latency(net, 16);
    const double slow =
        gpu.corun_slowdown(net.total_ops() * 16.0, diag_ops);
    ASSERT_GT(slow, 1.0);
    std::vector<double> deadlines(16, 0.5 * t16 * (1.0 + slow));
    const int64_t alone =
        planner.plan(gpu, net, 0.0, deadlines, 0.0).batch;
    EXPECT_EQ(alone, 16);
    const int64_t corun =
        planner.plan(gpu, net, 0.0, deadlines, diag_ops).batch;
    EXPECT_LT(corun, alone);
    EXPECT_GE(corun, 1);
}

// ---- calibration bridge -------------------------------------------

TEST(Calibrate, HistogramNamesRoundTrip)
{
    EXPECT_EQ(exec_histogram_name(8), "serving.exec.time_s.b008");
    EXPECT_EQ(exec_histogram_name(32), "serving.exec.time_s.b032");
    EXPECT_EQ(parse_exec_histogram_name("serving.exec.time_s.b008"),
              8);
    EXPECT_EQ(parse_exec_histogram_name("serving.exec.time_s"), -1);
    EXPECT_EQ(parse_exec_histogram_name("nn.forward.time_s"), -1);
}

TEST(Calibrate, ObservationsAggregateTheHistograms)
{
    obs::MetricsRegistry reg;
    reg.histogram(exec_histogram_name(4)).observe(0.040);
    reg.histogram(exec_histogram_name(4)).observe(0.060);
    reg.histogram(exec_histogram_name(1)).observe(0.020);
    reg.histogram("serving.exec.time_s").observe(9.0); // not b*
    reg.histogram(exec_histogram_name(16)); // empty: skipped

    const auto obs_points =
        observations_from_snapshot(reg.snapshot());
    ASSERT_EQ(obs_points.size(), 2u);
    EXPECT_EQ(obs_points[0].batch, 1); // ascending by batch
    EXPECT_EQ(obs_points[0].count, 1);
    EXPECT_NEAR(obs_points[0].mean_seconds, 0.020, 1e-6);
    EXPECT_EQ(obs_points[1].batch, 4);
    EXPECT_EQ(obs_points[1].count, 2);
    EXPECT_NEAR(obs_points[1].mean_seconds, 0.050, 1e-6);
}

TEST(Calibrate, RegistryFitRecoversHostConstants)
{
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const double scale = 1.6, overhead = 0.004;

    obs::MetricsRegistry reg;
    for (int64_t b : {1, 2, 4, 8, 16}) {
        const double t = scale * gpu.network_latency(net, b) + overhead;
        reg.histogram(exec_histogram_name(b)).observe(t);
        reg.histogram(exec_histogram_name(b)).observe(t);
    }
    const GpuCalibration fit =
        calibrate_from_registry(reg, gpu, net);
    EXPECT_EQ(fit.samples, 10);
    EXPECT_NEAR(fit.time_scale, scale, 1e-3);
    EXPECT_NEAR(fit.overhead_s, overhead, 1e-4);

    // An empty registry yields the identity.
    obs::MetricsRegistry empty;
    EXPECT_TRUE(
        calibrate_from_registry(empty, gpu, net).is_identity());
}

// ---- end-to-end runtime -------------------------------------------

TEST(Runtime, RunsAreByteDeterministic)
{
    auto once = []() {
        ServingConfig cfg = make_scenario("interactive_burst", 5.0, 3);
        cfg.transcript = TranscriptLevel::kFull;
        ServingRuntime runtime(cfg);
        return runtime.run();
    };
    const ServingReport a = once();
    const ServingReport b = once();
    EXPECT_GT(a.batches, 0);
    EXPECT_EQ(a.transcript, b.transcript);
    EXPECT_EQ(a.total.arrived, b.total.arrived);
    EXPECT_EQ(a.total.served, b.total.served);
    EXPECT_DOUBLE_EQ(a.total.p99_latency_s, b.total.p99_latency_s);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.calibration_fits, b.calibration_fits);
    EXPECT_DOUBLE_EQ(a.final_calibration.time_scale,
                     b.final_calibration.time_scale);
}

TEST(Runtime, ServesEveryAdmittedRequestExactlyOnce)
{
    ServingConfig cfg = make_scenario("interactive_burst", 5.0, 4);
    ServingRuntime runtime(cfg);
    const ServingReport rep = runtime.run();
    EXPECT_GT(rep.total.arrived, 0);
    // arrived = served + dropped + shed (no request lost or doubled).
    EXPECT_EQ(rep.total.arrived,
              rep.total.served + rep.total.dropped_capacity +
                  rep.total.shed_expired);
    EXPECT_GE(rep.makespan_s, 0.0);
    EXPECT_EQ(rep.swap_torn, false);
}

TEST(Runtime, CalibrationConvergesOnTheHostConstants)
{
    ServingConfig cfg = make_scenario("bulk_heavy", 10.0, 5);
    ServingRuntime runtime(cfg);
    const ServingReport rep = runtime.run();
    ASSERT_GT(rep.calibration_fits, 0);
    // The host profile is scale 1.6 / overhead 4 ms with 5% jitter;
    // the fitted constants must land near them and the residuals of
    // the measured operating points must be small.
    EXPECT_NEAR(rep.final_calibration.time_scale,
                cfg.host.time_scale, 0.1);
    EXPECT_NEAR(rep.final_calibration.overhead_s, cfg.host.overhead_s,
                0.002);
    EXPECT_LT(rep.mean_abs_residual, 0.1);
}

TEST(Runtime, MidBurstSwapsNeverStallOrTear)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 20);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    21);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const uint64_t v0 = node.model_version();

    // Near-saturated mix with frequent updates: some must land while
    // a batch is in flight.
    ServingConfig cfg = make_scenario("bulk_heavy", 8.0, 6);
    cfg.corun.update_period_s = 0.7;
    ServingRuntime runtime(cfg, &node);
    const ServingReport rep = runtime.run();

    EXPECT_GE(rep.updates_staged, 5);
    EXPECT_GE(rep.mid_batch_stages, 1);
    EXPECT_GE(rep.swaps_committed, 1);
    EXPECT_LE(rep.swaps_committed, rep.updates_staged);
    EXPECT_FALSE(rep.swap_torn);
    EXPECT_DOUBLE_EQ(rep.swap_stall_s, 0.0);
    EXPECT_GT(node.model_version(), v0);
}

TEST(Runtime, RealInferenceGroundsTheStream)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 22);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    23);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());

    ServingConfig cfg = make_scenario("interactive_burst", 2.0, 7);
    cfg.real_inference_every = 2;
    ServingRuntime runtime(cfg, &node);
    const ServingReport rep = runtime.run();
    EXPECT_GT(rep.total.served, 0);

    // The run's local registry holds the calibration histograms.
    const auto obs_points = observations_from_snapshot(
        runtime.local_metrics().snapshot());
    EXPECT_FALSE(obs_points.empty());
}

TEST(Runtime, PlannerBeatsStaticBaselines)
{
    // Smoke version of the acceptance sweep (check_serving runs the
    // full one): on the bursty interactive mix the online planner's
    // miss rate must not exceed any static policy's.
    auto miss_rate = [](PlannerMode mode, int64_t static_b) {
        ServingConfig cfg = make_scenario("interactive_burst", 6.0, 7);
        cfg.planner.mode = mode;
        cfg.planner.static_batch = static_b;
        ServingRuntime runtime(cfg);
        return runtime.run().total.miss_rate;
    };
    const double online = miss_rate(PlannerMode::kOnline, 0);
    EXPECT_LE(online, miss_rate(PlannerMode::kStatic, 1));
    EXPECT_LE(online, miss_rate(PlannerMode::kStatic, 16));
}

// ---- planner hardening + overrides --------------------------------

TEST(Planner, EmptyQueueYieldsTheExplicitEmptyDecision)
{
    const BatchPlanner planner(PlannerConfig{});
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();
    const BatchDecision d = planner.plan(gpu, net, 0.0, {}, 0.0);
    EXPECT_EQ(d.batch, 0);
    EXPECT_DOUBLE_EQ(d.predicted_s, 0.0);
    EXPECT_TRUE(d.deadline_feasible);
}

TEST(Planner, OverridesInflateSafetyAndForceDrain)
{
    PlannerConfig cfg;
    cfg.max_batch = 8;
    const BatchPlanner planner(cfg);
    const GpuModel gpu(tx1_spec());
    const NetworkDesc net = alexnet_desc();

    // Front slack of 2x the batch-8 prediction: the full batch fits
    // at safety 1x, but a 3x-inflated margin must back off to a
    // smaller (still feasible) prefix.
    const double t1 =
        cfg.safety * gpu.predicted_batch_latency(net, 1);
    const double t8 =
        cfg.safety * gpu.predicted_batch_latency(net, 8);
    ASSERT_LT(3.0 * t1, 2.0 * t8); // batch 1 survives the inflation
    std::vector<double> deadlines(8, 2.0 * t8);
    EXPECT_EQ(planner.plan(gpu, net, 0.0, deadlines, 0.0).batch, 8);

    PlanOverrides hedged;
    hedged.safety_mult = 3.0;
    const BatchDecision careful =
        planner.plan(gpu, net, 0.0, deadlines, 0.0, hedged);
    EXPECT_TRUE(careful.deadline_feasible);
    EXPECT_LT(careful.batch, 8);

    // Forced drain ignores a perfectly feasible front deadline.
    PlanOverrides drain;
    drain.force_drain = true;
    const std::vector<double> relaxed(8, 100.0);
    const BatchDecision forced =
        planner.plan(gpu, net, 0.0, relaxed, 0.0, drain);
    EXPECT_FALSE(forced.deadline_feasible);
    EXPECT_EQ(forced.batch, 8); // Eq 5 throughput grows with batch
}

// ---- per-class admission accounting + degraded shedding ------------

TEST(AdmissionQueue, SplitsStatsByClass)
{
    AdmissionQueue q(2, 2);
    Request r0 = make_request(0, 0.0, 0.5);
    Request r1 = make_request(1, 0.0, 0.2);
    r1.cls = 1;
    Request r2 = make_request(2, 0.0, 0.9);
    r2.cls = 1;
    EXPECT_TRUE(q.admit(r0));
    EXPECT_TRUE(q.admit(r1));
    EXPECT_FALSE(q.admit(r2)); // capacity 2: class-1 drop

    EXPECT_EQ(q.class_stats(0).arrived, 1);
    EXPECT_EQ(q.class_stats(0).admitted, 1);
    EXPECT_EQ(q.class_stats(1).arrived, 2);
    EXPECT_EQ(q.class_stats(1).admitted, 1);
    EXPECT_EQ(q.class_stats(1).dropped_capacity, 1);

    // Formation-time sheds land on the expiring request's class.
    const auto shed = q.shed_expired(0.3);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].cls, 1);
    EXPECT_EQ(q.class_stats(1).shed_expired, 1);
    EXPECT_EQ(q.class_stats(0).shed_expired, 0);
    // Aggregate stays the sum of the per-class rows.
    EXPECT_EQ(q.stats().arrived, 3);
    EXPECT_EQ(q.stats().dropped_capacity, 1);
    EXPECT_EQ(q.stats().shed_expired, 1);
}

TEST(AdmissionQueue, DegradedSheddingRefusesMaskedClasses)
{
    AdmissionQueue q(8, 2);
    q.set_degraded_shedding({false, true});
    EXPECT_TRUE(q.sheds_class(1));
    EXPECT_FALSE(q.sheds_class(0));

    Request keep = make_request(0, 0.0, 0.5);
    Request shed = make_request(1, 0.0, 0.5);
    shed.cls = 1;
    EXPECT_TRUE(q.admit(keep));
    EXPECT_FALSE(q.admit(shed));
    EXPECT_EQ(q.depth(), 1u);
    EXPECT_EQ(q.class_stats(1).shed_degraded, 1);
    EXPECT_EQ(q.class_stats(1).dropped_capacity, 0);
    EXPECT_EQ(q.stats().shed_degraded, 1);

    // Clearing the mask restores admission (the ladder's reversal).
    q.set_degraded_shedding({});
    EXPECT_TRUE(q.admit(shed));
    EXPECT_EQ(q.class_stats(1).admitted, 1);
}

// ---- gray-failure detector -----------------------------------------

TEST(Detector, WalksTheLadderAndRecovers)
{
    DetectorConfig cfg;
    cfg.alpha = 0.5;
    cfg.escalate_after = 3;
    cfg.probation_batches = 2;
    GrayFailureDetector det(cfg);
    EXPECT_EQ(det.state(), DeviceHealth::kHealthy);
    EXPECT_EQ(det.rung(), 0);

    // Small residuals: healthy stays healthy.
    for (int i = 0; i < 10; ++i) {
        const auto v = det.observe(0.03);
        EXPECT_FALSE(v.changed);
        EXPECT_EQ(v.state, DeviceHealth::kHealthy);
    }

    // A sustained 60% divergence climbs suspect -> degraded and then
    // escalates one rung per 3-batch high streak up to the top.
    auto v = det.observe(0.6); // ewma 0.315 > suspect_enter
    EXPECT_TRUE(v.changed);
    EXPECT_EQ(v.state, DeviceHealth::kSuspect);
    EXPECT_EQ(v.rung, 1);
    v = det.observe(0.6); // ewma > degraded_enter
    EXPECT_EQ(v.state, DeviceHealth::kDegraded);
    EXPECT_EQ(v.rung, 2);
    for (int i = 0; i < 3; ++i) v = det.observe(0.6);
    EXPECT_EQ(v.rung, 3);
    for (int i = 0; i < 3; ++i) v = det.observe(0.6);
    EXPECT_EQ(v.rung, 4);
    for (int i = 0; i < 3; ++i) v = det.observe(0.6);
    EXPECT_EQ(v.rung, 4); // clamped at max_rung

    // Residuals recover: degraded -> probation, and after the clean
    // run the detector demands a recalibration before healthy.
    while (det.state() == DeviceHealth::kDegraded)
        v = det.observe(0.01);
    EXPECT_EQ(v.state, DeviceHealth::kProbation);
    EXPECT_EQ(v.rung, 1);
    v = det.observe(0.01);
    EXPECT_FALSE(v.calibrate);
    v = det.observe(0.01);
    EXPECT_TRUE(v.calibrate);
    EXPECT_EQ(v.state, DeviceHealth::kHealthy);
    EXPECT_EQ(v.rung, 0);
}

TEST(Detector, OneDirtyBatchVoidsProbation)
{
    DetectorConfig cfg;
    cfg.alpha = 0.5;
    cfg.probation_batches = 4;
    GrayFailureDetector det(cfg);
    while (det.state() != DeviceHealth::kDegraded) det.observe(0.8);
    while (det.state() != DeviceHealth::kProbation)
        det.observe(0.01);
    det.observe(0.01);
    // One residual above suspect_enter sends it straight back.
    const auto v = det.observe(0.5);
    EXPECT_EQ(v.state, DeviceHealth::kDegraded);
    EXPECT_EQ(v.rung, 2);
}

// ---- device chaos end to end ---------------------------------------

TEST(Chaos, FaultFreeRunNeverTripsTheDetector)
{
    // A guarded fault-free run must behave byte-identically to the
    // unguarded runtime: zero transitions, zero rungs, identical
    // transcript (the PR 7 baseline).
    auto once = [](bool guarded) {
        ServingConfig cfg = make_scenario("diurnal_corun", 8.0, 13);
        cfg.transcript = TranscriptLevel::kFull;
        cfg.degrade.enabled = guarded;
        ServingRuntime runtime(cfg);
        return runtime.run();
    };
    const ServingReport guarded = once(true);
    const ServingReport unguarded = once(false);
    EXPECT_EQ(guarded.degradation.transitions, 0);
    EXPECT_EQ(guarded.degradation.max_rung, 0);
    EXPECT_EQ(guarded.degradation.shed_degraded, 0);
    EXPECT_EQ(guarded.degradation.final_state, "healthy");
    EXPECT_EQ(guarded.transcript, unguarded.transcript);
    EXPECT_DOUBLE_EQ(guarded.total.miss_rate,
                     unguarded.total.miss_rate);
}

TEST(Chaos, RunsAreByteDeterministic)
{
    auto once = []() {
        ServingConfig cfg = make_device_chaos(12.0, 17);
        cfg.transcript = TranscriptLevel::kFull;
        ServingRuntime runtime(cfg);
        return runtime.run();
    };
    const ServingReport a = once();
    const ServingReport b = once();
    EXPECT_EQ(a.transcript, b.transcript);
    EXPECT_EQ(a.degradation.transitions, b.degradation.transitions);
    EXPECT_EQ(a.degradation.max_rung, b.degradation.max_rung);
    EXPECT_EQ(a.degradation.shed_degraded,
              b.degradation.shed_degraded);
    EXPECT_DOUBLE_EQ(a.degradation.final_ewma,
                     b.degradation.final_ewma);
    // The device faults actually fired.
    EXPECT_GT(a.degradation.throttled_batches, 0);
    EXPECT_GT(a.degradation.storm_batches, 0);
}

TEST(Chaos, LadderEngagesShedsAndRecovers)
{
    ServingConfig cfg = make_device_chaos(30.0, 11);
    ServingRuntime runtime(cfg);
    const ServingReport rep = runtime.run();

    // The ladder walked: shedding engaged (rung 2+), co-run windows
    // were skipped, sick-era calibration was suspended, and at least
    // one probation ended in a recalibrate-then-recover.
    EXPECT_GE(rep.degradation.max_rung, 2);
    EXPECT_GT(rep.degradation.shed_degraded, 0);
    EXPECT_GT(rep.degradation.diag_skipped, 0);
    EXPECT_GT(rep.degradation.calib_skipped, 0);
    EXPECT_GE(rep.degradation.probations, 1);
    EXPECT_GE(rep.degradation.recoveries, 1);
    // Conservation: every arrival is served, dropped or shed.
    EXPECT_EQ(rep.total.arrived,
              rep.total.served + rep.total.dropped_capacity +
                  rep.total.shed_expired +
                  rep.total.shed_degraded);
    // Only best-effort classes were shed at admission.
    EXPECT_EQ(rep.classes[0].shed_degraded, 0); // interactive
    EXPECT_GT(rep.classes[1].shed_degraded +
                  rep.classes[2].shed_degraded,
              0);
}

TEST(Chaos, LadderProtectsTheGuaranteedClass)
{
    // The acceptance bar: under the throttle + storm + stall mix the
    // degradation ladder keeps the guaranteed class's deadline-miss
    // rate strictly below the unguarded online planner's.
    auto miss = [](bool guarded) {
        ServingConfig cfg = make_device_chaos(30.0, 11);
        cfg.degrade.enabled = guarded;
        ServingRuntime runtime(cfg);
        return runtime.run().classes[0].miss_rate; // interactive
    };
    EXPECT_LT(miss(true), miss(false));
}

} // namespace
} // namespace insitu::serving
