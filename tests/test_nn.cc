/**
 * @file
 * Unit tests for layers, the network container, weight
 * sharing/freezing surgery, loss, optimizer, trainer and
 * serialization.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(Conv2d, KnownConvolution)
{
    Rng rng(1);
    Conv2d conv("c", 1, 1, 2, 1, 0, rng);
    conv.weight()->value() = Tensor({1, 1, 2, 2}, {1, 0, 0, 1});
    conv.bias()->value() = Tensor({1}, {0.5f});
    Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    const Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(2), 2);
    EXPECT_EQ(y.dim(3), 2);
    // Window [[1,2],[4,5]] . [[1,0],[0,1]] = 6, + bias.
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 6.5f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 14.5f);
}

TEST(Conv2d, StrideAndPaddingShapes)
{
    Rng rng(2);
    Conv2d conv("c", 3, 8, 5, 2, 2, rng);
    Tensor x({2, 3, 32, 32});
    const Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 16);
    EXPECT_EQ(y.dim(3), 16);
}

TEST(Conv2d, ChannelMismatchDies)
{
    Rng rng(3);
    Conv2d conv("c", 3, 4, 3, 1, 1, rng);
    Tensor x({1, 2, 8, 8});
    EXPECT_DEATH(conv.forward(x, false), "channels");
}

TEST(Linear, KnownAffine)
{
    Rng rng(4);
    Linear fc("fc", 2, 2, rng);
    fc.weight()->value() = Tensor({2, 2}, {1, 2, 3, 4});
    fc.bias()->value() = Tensor({2}, {10, 20});
    Tensor x({1, 2}, {1, 1});
    const Tensor y = fc.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f); // 1*1+2*1+10
    EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f); // 3*1+4*1+20
}

TEST(ReLU, ForwardAndBackwardMask)
{
    ReLU relu;
    Tensor x({4}, {-1, 0, 2, -3});
    const Tensor y = relu.forward(x, false);
    EXPECT_EQ(y.at(0), 0.0f);
    EXPECT_EQ(y.at(2), 2.0f);
    Tensor g({4}, {1, 1, 1, 1});
    const Tensor gi = relu.backward(g);
    EXPECT_EQ(gi.at(0), 0.0f);
    EXPECT_EQ(gi.at(2), 1.0f);
}

TEST(Flatten, RoundTripShapes)
{
    Flatten f;
    Tensor x({2, 3, 4, 5});
    const Tensor y = f.forward(x, false);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 60);
    const Tensor back = f.backward(y);
    EXPECT_EQ(back.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity)
{
    Rng rng(5);
    Dropout d("d", 0.5, rng);
    Tensor x({100}, 1.0f);
    const Tensor y = d.forward(x, /*training=*/false);
    EXPECT_EQ(y.sum(), 100.0);
}

TEST(Dropout, TrainingPreservesExpectation)
{
    Rng rng(6);
    Dropout d("d", 0.5, rng);
    Tensor x({20000}, 1.0f);
    const Tensor y = d.forward(x, /*training=*/true);
    EXPECT_NEAR(y.mean(), 1.0, 0.05);
}

TEST(MaxPool, SelectsWindowMaxima)
{
    MaxPool2d pool("p", 2, 2);
    Tensor x({1, 1, 4, 4},
             {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    const Tensor y = pool.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 6.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 16.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax)
{
    MaxPool2d pool("p", 2, 2);
    Tensor x({1, 1, 2, 2}, {1, 9, 3, 4});
    pool.forward(x, false);
    Tensor g({1, 1, 1, 1}, {5.0f});
    const Tensor gi = pool.backward(g);
    EXPECT_EQ(gi.at(0, 0, 0, 1), 5.0f);
    EXPECT_EQ(gi.at(0, 0, 0, 0), 0.0f);
}

TEST(AvgPool, AveragesWindows)
{
    AvgPool2d pool("p", 2, 2);
    Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor y = pool.forward(x, false);
    EXPECT_FLOAT_EQ(y.at(0), 2.5f);
    Tensor g({1, 1, 1, 1}, {4.0f});
    const Tensor gi = pool.backward(g);
    for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gi.at(i), 1.0f);
}

TEST(Softmax, RowsSumToOne)
{
    Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
    const Tensor p = softmax_rows(logits);
    for (int64_t r = 0; r < 2; ++r) {
        double s = 0.0;
        for (int64_t c = 0; c < 3; ++c) s += p.at(r, c);
        EXPECT_NEAR(s, 1.0, 1e-6);
    }
}

TEST(Softmax, StableUnderLargeLogits)
{
    Tensor logits({1, 2}, {1000.0f, 999.0f});
    const Tensor p = softmax_rows(logits);
    EXPECT_NEAR(p.at(0, 0), 0.731, 1e-3);
}

TEST(CrossEntropy, PerfectPredictionLowLoss)
{
    Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
    SoftmaxCrossEntropy loss;
    EXPECT_LT(loss.forward(logits, {0}), 1e-6);
}

TEST(CrossEntropy, UniformLogitsGiveLogC)
{
    Tensor logits({1, 4});
    SoftmaxCrossEntropy loss;
    EXPECT_NEAR(loss.forward(logits, {2}), std::log(4.0), 1e-6);
}

TEST(CrossEntropy, GradientSignsAndSum)
{
    Tensor logits({1, 3}, {1.0f, 2.0f, 0.5f});
    SoftmaxCrossEntropy loss;
    loss.forward(logits, {1});
    const Tensor g = loss.backward();
    EXPECT_LT(g.at(0, 1), 0.0f); // true class pushed up
    EXPECT_GT(g.at(0, 0), 0.0f);
    EXPECT_NEAR(g.sum(), 0.0, 1e-6); // softmax grad sums to zero
}

Network
make_mlp(Rng& rng)
{
    Network net("mlp");
    net.emplace<Linear>("fc1", 4, 8, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc2", 8, 3, rng);
    return net;
}

TEST(Network, ForwardShapes)
{
    Rng rng(7);
    Network net = make_mlp(rng);
    Tensor x({5, 4});
    const Tensor y = net.forward(x);
    EXPECT_EQ(y.dim(0), 5);
    EXPECT_EQ(y.dim(1), 3);
}

TEST(Network, ParamCountAndZeroGrad)
{
    Rng rng(8);
    Network net = make_mlp(rng);
    EXPECT_EQ(net.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    for (auto& p : net.params()) p->grad().fill(1.0f);
    net.zero_grad();
    for (auto& p : net.params()) EXPECT_EQ(p->grad().sum(), 0.0);
}

Network
make_cnn(Rng& rng, const std::string& name = "cnn")
{
    Network net(name);
    net.emplace<Conv2d>("conv1", 1, 4, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<Conv2d>("conv2", 4, 4, 3, 1, 1, rng)
        .emplace<ReLU>()
        .emplace<Flatten>()
        .emplace<Linear>("fc", 4 * 8 * 8, 3, rng);
    return net;
}

TEST(Network, ConvLayerIndices)
{
    Rng rng(9);
    Network net = make_cnn(rng);
    const auto idx = net.conv_layer_indices();
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 2u);
}

TEST(Network, FreezeFirstConvs)
{
    Rng rng(10);
    Network net = make_cnn(rng);
    net.freeze_first_convs(1);
    EXPECT_LT(net.trainable_param_count(), net.param_count());
    const auto idx = net.conv_layer_indices();
    for (auto& p : net.layer(idx[0]).params()) EXPECT_TRUE(p->frozen());
    for (auto& p : net.layer(idx[1]).params())
        EXPECT_FALSE(p->frozen());
    net.unfreeze_all();
    EXPECT_EQ(net.trainable_param_count(), net.param_count());
}

TEST(Network, FreezeTooManyDies)
{
    Rng rng(11);
    Network net = make_cnn(rng);
    EXPECT_DEATH(net.freeze_first_convs(3), "conv layers");
}

TEST(Network, CopyConvsCopiesValuesNotStorage)
{
    Rng rng(12);
    Network a = make_cnn(rng, "a");
    Network b = make_cnn(rng, "b");
    b.copy_convs_from(a, 2);
    const auto ia = a.conv_layer_indices();
    const auto ib = b.conv_layer_indices();
    auto pa = a.layer(ia[0]).params();
    auto pb = b.layer(ib[0]).params();
    EXPECT_NE(pa[0].get(), pb[0].get()); // distinct storage
    for (int64_t i = 0; i < pa[0]->numel(); ++i)
        EXPECT_EQ(pa[0]->value().at(i), pb[0]->value().at(i));
    EXPECT_EQ(b.shared_conv_prefix(a), 0u);
}

TEST(Network, ShareConvsSharesStorage)
{
    Rng rng(13);
    Network a = make_cnn(rng, "a");
    Network b = make_cnn(rng, "b");
    b.share_convs_from(a, 1);
    EXPECT_EQ(b.shared_conv_prefix(a), 1u);
    const auto ia = a.conv_layer_indices();
    const auto ib = b.conv_layer_indices();
    auto pa = a.layer(ia[0]).params();
    auto pb = b.layer(ib[0]).params();
    EXPECT_EQ(pa[0].get(), pb[0].get());
    // A write through one network is visible through the other.
    pa[0]->value().at(0) = 123.0f;
    EXPECT_EQ(pb[0]->value().at(0), 123.0f);
}

TEST(Network, SharedParamsReportedOnce)
{
    Rng rng(14);
    Network a = make_cnn(rng, "a");
    Network b = make_cnn(rng, "b");
    const int64_t before = b.param_count();
    b.share_convs_from(a, 2);
    EXPECT_EQ(b.param_count(), before); // same shapes, counted once
    EXPECT_EQ(b.params().size(), 6u);
}

TEST(Sgd, DescendsOnQuadratic)
{
    // Minimize f(w) = (w - 3)^2 by hand-feeding gradients.
    auto p = std::make_shared<Parameter>("w", std::vector<int64_t>{1});
    p->value().at(0) = 0.0f;
    Sgd opt({.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
    for (int i = 0; i < 100; ++i) {
        p->zero_grad();
        p->grad().at(0) = 2.0f * (p->value().at(0) - 3.0f);
        opt.step({p});
    }
    EXPECT_NEAR(p->value().at(0), 3.0f, 1e-3f);
}

TEST(Sgd, SkipsFrozenParams)
{
    auto p = std::make_shared<Parameter>("w", std::vector<int64_t>{1});
    p->set_frozen(true);
    p->grad().at(0) = 1.0f;
    Sgd opt({.lr = 0.1});
    opt.step({p});
    EXPECT_EQ(p->value().at(0), 0.0f);
}

TEST(Sgd, MomentumAcceleratesDescent)
{
    auto run = [](double momentum) {
        auto p =
            std::make_shared<Parameter>("w", std::vector<int64_t>{1});
        p->value().at(0) = 10.0f;
        Sgd opt({.lr = 0.01, .momentum = momentum});
        for (int i = 0; i < 20; ++i) {
            p->zero_grad();
            p->grad().at(0) = 2.0f * p->value().at(0);
            opt.step({p});
        }
        return std::abs(p->value().at(0));
    };
    EXPECT_LT(run(0.9), run(0.0));
}

TEST(Trainer, LearnsLinearlySeparableProblem)
{
    // Two Gaussian blobs in 2-D must be separable by a tiny MLP.
    Rng rng(15);
    const int64_t n = 200;
    Tensor x({n, 2});
    std::vector<int64_t> y(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        const int64_t cls = i % 2;
        y[static_cast<size_t>(i)] = cls;
        const float cx = cls ? 2.0f : -2.0f;
        x.at(i * 2 + 0) = cx + static_cast<float>(rng.normal(0, 0.5));
        x.at(i * 2 + 1) = static_cast<float>(rng.normal(0, 0.5));
    }
    Network net("toy");
    net.emplace<Linear>("fc1", 2, 8, rng)
        .emplace<ReLU>()
        .emplace<Linear>("fc2", 8, 2, rng);
    Sgd opt({.lr = 0.1, .momentum = 0.9});
    const auto stats = train_epochs(net, opt, x, y, 16, 10, rng);
    EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
    EXPECT_GT(evaluate_accuracy(net, x, y), 0.95);
}

TEST(Trainer, GatherRows)
{
    Tensor x({3, 2}, {0, 1, 2, 3, 4, 5});
    const Tensor g = gather_rows(x, {2, 0});
    EXPECT_EQ(g.at(0, 0), 4.0f);
    EXPECT_EQ(g.at(1, 1), 1.0f);
}

TEST(Serialize, RoundTripRestoresWeights)
{
    Rng rng(16);
    Network a = make_cnn(rng, "net");
    Network b = make_cnn(rng, "net");
    std::stringstream ss;
    save_weights(a, ss);
    ASSERT_TRUE(load_weights(b, ss));
    auto pa = a.params();
    auto pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->numel(); ++j)
            EXPECT_EQ(pa[i]->value().at(j), pb[i]->value().at(j));
}

TEST(Serialize, RejectsMismatchedNetwork)
{
    Rng rng(17);
    Network a = make_cnn(rng);
    Network b = make_mlp(rng);
    std::stringstream ss;
    save_weights(a, ss);
    EXPECT_FALSE(load_weights(b, ss));
}

TEST(Serialize, RejectsGarbageStream)
{
    Rng rng(18);
    Network a = make_mlp(rng);
    std::stringstream ss("not a weight file");
    EXPECT_FALSE(load_weights(a, ss));
}

TEST(Network, SummaryMentionsLayers)
{
    Rng rng(19);
    Network net = make_cnn(rng, "demo");
    const std::string s = net.summary();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("conv1"), std::string::npos);
    EXPECT_NE(s.find("trainable"), std::string::npos);
}

} // namespace
} // namespace insitu
