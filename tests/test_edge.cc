/**
 * @file
 * Edge-case sweep: degenerate inputs, planner infeasibility paths,
 * idempotence of surgery operations, and error-path exits.
 */
#include <gtest/gtest.h>

#include "analytics/planner.h"
#include "fpga/pipeline.h"
#include "models/tiny.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(Edge, EvaluateAccuracyOnEmptySetIsZero)
{
    Rng rng(1);
    Network net("n");
    net.emplace<Linear>("fc", 2, 2, rng);
    Tensor empty({0, 2});
    EXPECT_DOUBLE_EQ(evaluate_accuracy(net, empty, {}), 0.0);
}

TEST(Edge, TrainEpochsWithBatchLargerThanData)
{
    Rng rng(2);
    Network net("n");
    net.emplace<Linear>("fc", 2, 2, rng);
    Tensor x({3, 2});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Sgd opt({.lr = 0.1});
    const auto stats = train_epochs(net, opt, x, {0, 1, 0}, 64, 2, rng);
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_GT(stats[0].mean_loss, 0.0);
}

TEST(Edge, TrainEpochsZeroEpochsIsNoop)
{
    Rng rng(3);
    Network net("n");
    net.emplace<Linear>("fc", 2, 2, rng);
    const float before = net.params()[0]->value().at(0);
    Tensor x({2, 2});
    Sgd opt({.lr = 0.1});
    EXPECT_TRUE(train_epochs(net, opt, x, {0, 1}, 2, 0, rng).empty());
    EXPECT_EQ(net.params()[0]->value().at(0), before);
}

TEST(Edge, UnfreezeIsIdempotent)
{
    Rng rng(4);
    TinyConfig config;
    config.num_permutations = 8;
    Network net = make_tiny_inference(config, rng);
    net.freeze_first_convs(3);
    net.freeze_first_convs(3); // re-freezing is fine
    net.unfreeze_all();
    net.unfreeze_all();
    EXPECT_EQ(net.trainable_param_count(), net.param_count());
}

TEST(Edge, ShareConvsTwiceIsStable)
{
    Rng rng(5);
    TinyConfig config;
    config.num_permutations = 8;
    Network a = make_tiny_inference(config, rng);
    Network b = make_tiny_inference(config, rng);
    b.share_convs_from(a, 3);
    b.share_convs_from(a, 3);
    EXPECT_EQ(b.shared_conv_prefix(a), 3u);
    // Extending the share later also works.
    b.share_convs_from(a, 5);
    EXPECT_EQ(b.shared_conv_prefix(a), 5u);
}

TEST(Edge, FreezeZeroIsNoop)
{
    Rng rng(6);
    TinyConfig config;
    config.num_permutations = 8;
    Network net = make_tiny_inference(config, rng);
    net.freeze_first_convs(0);
    EXPECT_EQ(net.trainable_param_count(), net.param_count());
}

TEST(Edge, StepLrScheduleGammaOneKeepsRate)
{
    Sgd opt({.lr = 0.3});
    StepLrSchedule schedule(opt, 1, 1.0);
    for (int i = 0; i < 5; ++i) schedule.on_epoch_end();
    EXPECT_DOUBLE_EQ(opt.lr(), 0.3);
}

TEST(Edge, SgdZeroLrChangesNothing)
{
    auto p = std::make_shared<Parameter>("w", std::vector<int64_t>{2});
    p->value().fill(1.0f);
    p->grad().fill(5.0f);
    Sgd opt({.lr = 0.0, .momentum = 0.0});
    opt.step({p});
    EXPECT_EQ(p->value().at(0), 1.0f);
}

TEST(Edge, CoRunningPlannerInfeasibleForImpossibleLatency)
{
    CoRunningPlanner planner{FpgaModel(vx690t_spec())};
    const auto plan = planner.plan(alexnet_desc(), 1e-4);
    EXPECT_FALSE(plan.feasible);
}

TEST(Edge, PlannerRejectsNonPositiveLatency)
{
    SingleRunningPlanner planner{GpuModel(tx1_spec())};
    EXPECT_DEATH(
        planner.max_batch_under_latency(alexnet_desc(), 0.0),
        "latency");
}

TEST(Edge, PipelinePlanInfeasibleIsEmpty)
{
    CorunPipeline pipe(vx690t_spec(), 2628, {8, 10});
    const auto plan = pipe.best_under_latency(
        alexnet_desc(), PipelineVariant::kWs, 1e-4);
    EXPECT_FALSE(plan.feasible);
    EXPECT_EQ(plan.batch, 0);
    EXPECT_DOUBLE_EQ(plan.throughput, 0.0);
}

TEST(Edge, ReluOnAllNegativeInputIsZeroWithZeroGrad)
{
    ReLU relu;
    Tensor x({3}, {-1.0f, -2.0f, -0.5f});
    const Tensor y = relu.forward(x, false);
    EXPECT_EQ(y.sum(), 0.0);
    Tensor g({3}, 1.0f);
    EXPECT_EQ(relu.backward(g).sum(), 0.0);
}

TEST(Edge, DropoutPZeroIsIdentityEvenInTraining)
{
    Rng rng(7);
    Dropout d("d", 0.0, rng);
    Tensor x({10}, 2.0f);
    const Tensor y = d.forward(x, /*training=*/true);
    EXPECT_EQ(y.sum(), 20.0);
    Tensor g({10}, 1.0f);
    EXPECT_EQ(d.backward(g).sum(), 10.0);
}

TEST(Edge, RngSplitChainsStayDeterministic)
{
    Rng a(99), b(99);
    Rng a1 = a.split(), b1 = b.split();
    Rng a2 = a1.split(), b2 = b1.split();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a2.next_u64(), b2.next_u64());
}

TEST(Edge, GpuMaxBatchRespectsExplicitLimit)
{
    GpuModel gpu(tx1_spec());
    EXPECT_LE(gpu.max_batch_for_memory(tinynet_desc(), 16), 16);
}

TEST(Edge, JigsawEvaluateEmptyIsZero)
{
    Rng rng(8);
    TinyConfig config;
    config.num_permutations = 8;
    JigsawNetwork jig = make_tiny_jigsaw(config, rng);
    PermutationSet perms(config.num_permutations, rng);
    Tensor empty({0, 3, 24, 24});
    EXPECT_DOUBLE_EQ(jig.evaluate(empty, perms, rng), 0.0);
}

} // namespace
} // namespace insitu
