/**
 * @file
 * Tests for the fault-injection subsystem and the resilience it
 * exercises: deterministic replay, outage/loss/corruption handling in
 * the uplink, bounded backlogs, node crash/restore, and the cloud's
 * update-validation gate.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cloud/update_service.h"
#include "faults/fault_injector.h"
#include "iot/fleet.h"
#include "iot/uplink.h"

namespace insitu {
namespace {

TEST(FaultPlan, PureQueriesAndEmptiness)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.outages = {{10.0, 20.0}, {20.0, 25.0}, {40.0, 50.0}};
    plan.crashes = {{2, 1}};
    plan.poisoned_stages = {3};
    EXPECT_FALSE(plan.empty());

    EXPECT_FALSE(plan.link_down(5.0));
    EXPECT_TRUE(plan.link_down(10.0));
    EXPECT_TRUE(plan.link_down(24.9));
    EXPECT_FALSE(plan.link_down(25.0));
    // Abutting windows chain: an outage starting inside another's
    // end extends the wait.
    EXPECT_DOUBLE_EQ(plan.outage_end(12.0), 25.0);
    EXPECT_DOUBLE_EQ(plan.outage_end(45.0), 50.0);
    EXPECT_DOUBLE_EQ(plan.outage_end(30.0), 30.0);

    EXPECT_TRUE(plan.crashes_at(2, 1));
    EXPECT_FALSE(plan.crashes_at(2, 0));
    EXPECT_FALSE(plan.crashes_at(1, 1));
    EXPECT_TRUE(plan.poisoned_at(3));
    EXPECT_FALSE(plan.poisoned_at(2));
}

TEST(FaultPlan, FlappingWindowsCycleInsideTheirRange)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.flapping = {{10.0, 50.0, 10.0, 4.0}};
    EXPECT_FALSE(plan.empty()); // flapping alone makes a plan real
    plan.validated();

    // Before/after the window the link never flaps.
    EXPECT_FALSE(plan.flapping_down(9.9));
    EXPECT_FALSE(plan.flapping_down(50.0));
    // Inside: down for the first 4 s of every 10 s cycle.
    EXPECT_TRUE(plan.flapping_down(10.0));
    EXPECT_TRUE(plan.flapping_down(13.9));
    EXPECT_FALSE(plan.flapping_down(14.0));
    EXPECT_FALSE(plan.flapping_down(19.9));
    EXPECT_TRUE(plan.flapping_down(20.0));
    EXPECT_TRUE(plan.flapping_down(43.0));
    EXPECT_FALSE(plan.flapping_down(45.0));
    // A flap is not an outage: the radio cannot see it coming.
    EXPECT_FALSE(plan.link_down(12.0));

    EXPECT_STREQ(fault_kind_name(FaultKind::kFlappingLink),
                 "flapping-link");
    EXPECT_STREQ(fault_kind_name(FaultKind::kOutage), "outage");
}

TEST(FaultInjector, FlappingIsPureButLogged)
{
    FaultPlan plan;
    plan.flapping = {{0.0, 100.0, 10.0, 4.0}};
    plan.payload_loss_prob = 0.3;
    plan.seed = 5;
    FaultInjector with_flaps(plan);
    FaultInjector control(plan);

    // Flap queries consume no draw from the injector stream: the
    // Bernoulli sequence must stay aligned with a control injector
    // that never asks. (This is what keeps pre-flapping plans
    // replaying bit-identically.)
    for (int i = 0; i < 100; ++i) {
        const double t = static_cast<double>(i);
        EXPECT_EQ(with_flaps.transmission_flapped(t),
                  plan.flapping_down(t));
        EXPECT_EQ(with_flaps.drop_payload(), control.drop_payload());
    }
    // ...but every eaten attempt is logged.
    EXPECT_EQ(with_flaps.log().flapping_failures, 40);
    EXPECT_EQ(control.log().flapping_failures, 0);
}

TEST(FaultInjector, SameSeedSameDraws)
{
    FaultPlan plan;
    plan.payload_loss_prob = 0.3;
    plan.payload_corrupt_prob = 0.2;
    plan.seed = 77;
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.drop_payload(), b.drop_payload());
        EXPECT_EQ(a.corrupt_payload(), b.corrupt_payload());
    }
    EXPECT_EQ(a.log().payloads_lost, b.log().payloads_lost);
    EXPECT_EQ(a.log().payloads_corrupted, b.log().payloads_corrupted);
    EXPECT_GT(a.log().payloads_lost, 0);
    EXPECT_GT(a.log().payloads_corrupted, 0);
}

TEST(FaultKinds, NamesRoundTripExhaustively)
{
    // Every enum member must have a unique printable name that
    // fault_kind_from_name inverts. An added FaultKind without a
    // name string (or a stale kFaultKindCount) fails here instead of
    // printing "?" in production logs.
    std::set<std::string> seen;
    for (int i = 0; i < kFaultKindCount; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        const std::string name = fault_kind_name(kind);
        EXPECT_NE(name, "?") << "FaultKind " << i << " has no name";
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate fault kind name '" << name << "'";
        EXPECT_EQ(fault_kind_from_name(name.c_str()), kind);
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kFaultKindCount));
}

TEST(FaultPlan, ThrottleFactorRampsAndHolds)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.device_faulty());
    plan.throttles = {{10.0, 30.0, 3.0, 4.0}};
    EXPECT_TRUE(plan.device_faulty());
    EXPECT_FALSE(plan.empty()); // a throttle alone makes a plan real
    plan.validated();

    // Outside the window: no slowdown.
    EXPECT_DOUBLE_EQ(plan.throttle_factor(9.9), 1.0);
    EXPECT_DOUBLE_EQ(plan.throttle_factor(30.0), 1.0);
    // The ramp climbs linearly from 1 at from_s to the peak at
    // from_s + ramp_s, then holds.
    EXPECT_DOUBLE_EQ(plan.throttle_factor(10.0), 1.0);
    EXPECT_DOUBLE_EQ(plan.throttle_factor(12.0), 2.0);
    EXPECT_DOUBLE_EQ(plan.throttle_factor(14.0), 3.0);
    EXPECT_DOUBLE_EQ(plan.throttle_factor(25.0), 3.0);
    // A zero ramp is a step to the peak.
    plan.throttles = {{10.0, 30.0, 2.5, 0.0}};
    EXPECT_DOUBLE_EQ(plan.throttle_factor(10.0), 2.5);
}

TEST(FaultPlan, StormJitterFracCoversItsWindows)
{
    FaultPlan plan;
    plan.jitter_storms = {{5.0, 15.0, 0.2}, {10.0, 20.0, 0.4}};
    EXPECT_TRUE(plan.device_faulty());
    plan.validated();
    EXPECT_DOUBLE_EQ(plan.storm_jitter_frac(4.9), 0.0);
    EXPECT_DOUBLE_EQ(plan.storm_jitter_frac(5.0), 0.2);
    // Overlap: the larger frac wins.
    EXPECT_DOUBLE_EQ(plan.storm_jitter_frac(12.0), 0.4);
    EXPECT_DOUBLE_EQ(plan.storm_jitter_frac(19.9), 0.4);
    EXPECT_DOUBLE_EQ(plan.storm_jitter_frac(20.0), 0.0);
}

TEST(FaultInjector, DeviceStreamIsIsolatedFromOtherFaults)
{
    // Arming device faults must not perturb the payload or storage
    // replay sequences: device draws come from their own seeded
    // stream (seed ^ 0xDE71CE), and a device-calm instant consumes
    // no draw at all.
    FaultPlan base;
    base.payload_loss_prob = 0.3;
    base.torn_write_prob = 0.2;
    base.seed = 99;
    FaultPlan device = base;
    device.transient_stall_prob = 0.5;
    device.jitter_storms = {{0.0, 50.0, 0.3}};
    device.throttles = {{0.0, 100.0, 2.0, 5.0}};

    FaultInjector control(base);
    FaultInjector armed(device);
    for (int i = 0; i < 200; ++i) {
        const double t = static_cast<double>(i);
        // Interleave device queries on the armed injector only.
        armed.device_slowdown(t);
        armed.storm_jitter(t);
        armed.transient_stall();
        EXPECT_EQ(armed.drop_payload(), control.drop_payload());
        EXPECT_EQ(armed.torn_write(), control.torn_write());
    }
    // The device activity was real (logged)...
    EXPECT_GT(armed.log().throttled_batches, 0);
    EXPECT_GT(armed.log().storm_batches, 0);
    EXPECT_GT(armed.log().transient_stalls, 0);
    // ...and a device-fault-free injector never touches the stream.
    EXPECT_EQ(control.log().throttled_batches, 0);
    EXPECT_EQ(control.log().storm_batches, 0);
    EXPECT_EQ(control.log().transient_stalls, 0);
}

TEST(UplinkQueue, OutageDelaysButNeverLoses)
{
    FaultPlan plan;
    plan.outages = {{0.0, 100.0}};
    FaultInjector injector(plan);

    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0; // 1000 bytes/s
    UplinkQueue queue(link, 1000.0); // 1 s per payload
    queue.set_fault_injector(&injector);
    queue.enqueue(5, 0.0);
    EXPECT_EQ(queue.drain_window(0.0, 200.0), 5);
    EXPECT_EQ(queue.stats().delivered, 5);
    EXPECT_EQ(queue.stats().dropped, 0);
    EXPECT_EQ(queue.stats().retransmits, 0);
    // Every payload waited out the 100 s outage first.
    EXPECT_GE(queue.stats().mean_delay_s(), 101.0);
    EXPECT_DOUBLE_EQ(queue.stats().outage_wait_s, 100.0);
}

TEST(UplinkQueue, ChecksummedRetransmitsDeliverEverything)
{
    FaultPlan plan;
    plan.payload_loss_prob = 0.25;
    plan.payload_corrupt_prob = 0.15;
    plan.seed = 9;
    FaultInjector injector(plan);

    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8e6; // 1 ms per 1000-byte payload
    UplinkQueue queue(link, 1000.0);
    queue.set_fault_injector(&injector);
    queue.enqueue(60, 0.0);
    EXPECT_EQ(queue.drain_window(0.0, 1e6), 60);
    EXPECT_EQ(queue.backlog(), 0);
    EXPECT_EQ(queue.stats().dropped, 0);
    EXPECT_GT(queue.stats().retransmits, 0);
    EXPECT_GT(queue.stats().lost_in_flight, 0);
    EXPECT_GT(queue.stats().corrupted, 0);
    // Failed attempts burn radio energy but do not count as goodput.
    EXPECT_DOUBLE_EQ(queue.stats().bytes_sent, 60 * 1000.0);
    EXPECT_GT(queue.stats().energy_j,
              60 * link.transfer_energy(1000.0));
    EXPECT_EQ(queue.stats().retransmits,
              queue.stats().lost_in_flight +
                  queue.stats().corrupted);
}

TEST(UplinkQueue, BackoffIsClampedAtItsCeiling)
{
    // A black-hole link (every payload vanishes) exposes the whole
    // backoff ladder: 0.5 s, 1 s, then clamped at 2 s forever.
    FaultPlan plan;
    plan.payload_loss_prob = 1.0;
    FaultInjector injector(plan);

    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0; // 1 s per 1000-byte payload
    UplinkConfig config;
    config.backoff_base_s = 0.5;
    config.backoff_max_s = 2.0;
    UplinkQueue queue(link, 1000.0, config);
    queue.set_fault_injector(&injector);
    queue.enqueue(1, 0.0);

    // Attempts start at t = 0, 1.5, 3.5, then — the clamp — every
    // 3 s (1 s transmit + 2 s backoff) through 57.5: 21 attempts fit
    // the [0, 60) window. An unclamped ladder would fit only 7.
    EXPECT_EQ(queue.drain_window(0.0, 60.0), 0);
    EXPECT_EQ(queue.stats().retransmits, 21);
    EXPECT_EQ(queue.stats().lost_in_flight, 21);
    EXPECT_EQ(queue.backlog(), 1); // still queued, never dropped
    EXPECT_DOUBLE_EQ(queue.stats().energy_j,
                     21 * link.transfer_energy(1000.0));
}

TEST(UplinkQueue, DeliveryAfterAnOutageAccruesOutageWait)
{
    // A payload that sat through a mid-window outage accrues the
    // whole wait in outage_wait_s and still delivers.
    FaultPlan plan;
    plan.outages = {{2.0, 30.0}};
    FaultInjector injector(plan);

    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0; // 1 s per payload
    UplinkQueue queue(link, 1000.0);
    queue.set_fault_injector(&injector);
    queue.enqueue(3, 0.0);
    // Two payloads fit before the outage; the third waits it out.
    EXPECT_EQ(queue.drain_window(0.0, 40.0), 3);
    EXPECT_DOUBLE_EQ(queue.stats().outage_wait_s, 28.0);
    // Delays: 1 + 2 + 31 (the third delivered at t = 31).
    EXPECT_DOUBLE_EQ(queue.stats().total_delay_s, 34.0);
    EXPECT_EQ(queue.stats().retransmits, 0);
}

TEST(UplinkQueue, BoundedBacklogDropsOldestWithoutFaults)
{
    UplinkConfig config;
    config.max_backlog_images = 3;
    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0;
    UplinkQueue queue(link, 1000.0, config); // 1 s per payload
    EXPECT_EQ(queue.enqueue(2, 0.0), 0);
    EXPECT_EQ(queue.enqueue(3, 5.0), 2); // evicts the two t=0 payloads
    EXPECT_EQ(queue.backlog(), 3);
    EXPECT_EQ(queue.stats().dropped, 2);
    EXPECT_EQ(queue.drain_window(5.0, 100.0), 3);
    // Only the fresh (t=5) payloads delivered: delays count from 5.
    EXPECT_DOUBLE_EQ(queue.stats().total_delay_s,
                     (6.0 - 5.0) + (7.0 - 5.0) + (8.0 - 5.0));
}

TEST(UplinkQueue, ClearModelsPowerLoss)
{
    UplinkQueue queue(iot_uplink_spec(), 100.0);
    queue.enqueue(7, 0.0);
    EXPECT_EQ(queue.clear(), 7);
    EXPECT_EQ(queue.backlog(), 0);
    EXPECT_EQ(queue.drain_window(0.0, 1e9), 0);
}

TEST(UplinkQueue, ChecksumIsPayloadSpecific)
{
    const uint64_t a = UplinkQueue::payload_checksum(1, 1000.0);
    const uint64_t b = UplinkQueue::payload_checksum(2, 1000.0);
    const uint64_t c = UplinkQueue::payload_checksum(1, 2000.0);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, UplinkQueue::payload_checksum(1, 1000.0));
}

TEST(NodeCheckpoint, CrashRestoreRoundTripsDeployedModel)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 3);
    ModelUpdateService other(tiny, titan_x_spec(), 99);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    17);

    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint ckpt = node.checkpoint();
    EXPECT_FALSE(ckpt.empty());

    // The crash scribbles a different deployment over the node.
    node.deploy_diagnosis(other.jigsaw());
    node.deploy_inference(other.inference());

    ASSERT_TRUE(node.restore(ckpt));
    const auto want = cloud.inference().params();
    const auto got = node.inference().network().params();
    ASSERT_EQ(want.size(), got.size());
    for (size_t p = 0; p < want.size(); ++p)
        for (int64_t i = 0; i < want[p]->numel(); ++i)
            ASSERT_EQ(got[p]->value().at(i), want[p]->value().at(i));

    EXPECT_FALSE(node.restore(NodeCheckpoint{}));
}

TEST(NodeCheckpoint, RestoreIsAllOrNothingPerBlob)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 3);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    17);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint good = node.checkpoint();

    auto snapshot = [&node] {
        std::vector<std::vector<float>> all;
        auto grab = [&all](const Network& net) {
            for (const auto& p : net.params()) {
                std::vector<float> v;
                for (int64_t i = 0; i < p->numel(); ++i)
                    v.push_back(p->value().at(i));
                all.push_back(std::move(v));
            }
        };
        grab(node.inference().network());
        grab(node.diagnosis().network().trunk());
        grab(node.diagnosis().network().head());
        return all;
    };
    const auto before = snapshot();

    // Corrupt each blob in turn: restore must refuse the whole
    // checkpoint and leave every network — including the ones whose
    // blobs were fine — exactly as it was.
    for (int blob = 0; blob < 3; ++blob) {
        NodeCheckpoint bad = good;
        std::string& target =
            blob == 0   ? bad.trunk_blob
            : blob == 1 ? bad.head_blob
                        : bad.inference_blob;
        target.resize(target.size() / 2); // truncated mid-weights
        EXPECT_FALSE(node.restore(bad)) << "blob " << blob;
        const auto after = snapshot();
        ASSERT_EQ(before.size(), after.size());
        for (size_t p = 0; p < before.size(); ++p)
            for (size_t i = 0; i < before[p].size(); ++i)
                ASSERT_EQ(before[p][i], after[p][i])
                    << "blob " << blob << " param " << p;
    }
    // The untouched checkpoint still restores cleanly.
    EXPECT_TRUE(node.restore(good));
}

TEST(NodeCheckpoint, RejectsSwappedBlobsBitIdentically)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 3);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    17);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint good = node.checkpoint();

    auto snapshot = [&node] {
        std::vector<std::vector<float>> all;
        auto grab = [&all](const Network& net) {
            for (const auto& p : net.params()) {
                std::vector<float> v;
                for (int64_t i = 0; i < p->numel(); ++i)
                    v.push_back(p->value().at(i));
                all.push_back(std::move(v));
            }
        };
        grab(node.inference().network());
        grab(node.diagnosis().network().trunk());
        grab(node.diagnosis().network().head());
        return all;
    };
    const auto before = snapshot();

    // A checkpoint whose blobs were written to the wrong slots (the
    // classic "restored the wrong partition" bug): every blob is
    // individually valid, but none fits the network it lands on. The
    // restore must fail and leave the node bit-identical.
    NodeCheckpoint swapped = good;
    std::swap(swapped.inference_blob, swapped.head_blob);
    EXPECT_FALSE(node.restore(swapped));
    // Diagnosis pair swapped among themselves too.
    NodeCheckpoint diag_swapped = good;
    std::swap(diag_swapped.trunk_blob, diag_swapped.head_blob);
    EXPECT_FALSE(node.restore(diag_swapped));

    const auto after = snapshot();
    ASSERT_EQ(before.size(), after.size());
    for (size_t p = 0; p < before.size(); ++p)
        for (size_t i = 0; i < before[p].size(); ++i)
            ASSERT_EQ(before[p][i], after[p][i]) << "param " << p;
    EXPECT_TRUE(node.restore(good));
}

TEST(NodeCheckpoint, RejectsStaleWeightFormatBitIdentically)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 3);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    17);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    const NodeCheckpoint good = node.checkpoint();

    auto snapshot = [&node] {
        std::vector<std::vector<float>> all;
        auto grab = [&all](const Network& net) {
            for (const auto& p : net.params()) {
                std::vector<float> v;
                for (int64_t i = 0; i < p->numel(); ++i)
                    v.push_back(p->value().at(i));
                all.push_back(std::move(v));
            }
        };
        grab(node.inference().network());
        grab(node.diagnosis().network().trunk());
        grab(node.diagnosis().network().head());
        return all;
    };
    const auto before = snapshot();

    // A checkpoint written by an older firmware: the weight blob's
    // format-version word (right after the magic) says 1. Layouts may
    // have changed since, so the restore must refuse it wholesale.
    for (int blob = 0; blob < 3; ++blob) {
        NodeCheckpoint stale = good;
        std::string& target =
            blob == 0   ? stale.inference_blob
            : blob == 1 ? stale.trunk_blob
                        : stale.head_blob;
        ASSERT_GE(target.size(), 8u);
        target[4] = static_cast<char>(1);
        target[5] = target[6] = target[7] = static_cast<char>(0);
        EXPECT_FALSE(node.restore(stale)) << "blob " << blob;
        const auto after = snapshot();
        ASSERT_EQ(before.size(), after.size());
        for (size_t p = 0; p < before.size(); ++p)
            for (size_t i = 0; i < before[p].size(); ++i)
                ASSERT_EQ(before[p][i], after[p][i])
                    << "blob " << blob << " param " << p;
    }
    EXPECT_TRUE(node.restore(good));
}

TEST(ValidationGate, RollsBackRegressingUpdate)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 5);
    Rng rng(11);
    SynthConfig synth;
    const Dataset train =
        make_dataset(synth, 200, Condition::in_situ(0.2), rng);
    const Dataset holdout =
        make_dataset(synth, 80, Condition::in_situ(0.2), rng);

    cloud.pretrain(train.images, 2);
    cloud.transfer_from_pretext(3);
    UpdatePolicy policy;
    policy.epochs = 4;
    cloud.update(train, policy);
    const double trained = cloud.evaluate(holdout);
    EXPECT_GT(trained, 0.3);

    // A clean update passes the gate and commits a new version.
    const auto ok =
        cloud.validated_update(train, policy, holdout, 0.02);
    EXPECT_FALSE(ok.rolled_back);
    EXPECT_GE(ok.holdout_after + 0.02, ok.holdout_before);
    const size_t versions_after_ok = cloud.registry().size();

    // A poisoned update (labels shifted by half the classes) must
    // regress and be rolled back, leaving accuracy untouched.
    Dataset poisoned = train;
    for (auto& label : poisoned.labels)
        label = (label + synth.num_classes / 2) % synth.num_classes;
    UpdatePolicy hard = policy;
    hard.epochs = 4;
    hard.lr = 0.05;
    const auto bad =
        cloud.validated_update(poisoned, hard, holdout, 0.02);
    EXPECT_TRUE(bad.rolled_back);
    EXPECT_DOUBLE_EQ(bad.holdout_after, bad.holdout_before);
    EXPECT_DOUBLE_EQ(cloud.evaluate(holdout), bad.holdout_before);
    // Rejected updates leave no "accepted" version behind.
    EXPECT_EQ(cloud.registry().size(), versions_after_ok + 1);
}

FleetConfig
chaos_fleet_config()
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    c.pretrain_epochs = 1;
    c.incremental_pretrain_epochs = 1;
    c.node_severity_offset = {0.0, 0.2};
    c.holdout_images = 32;
    c.seed = 21;
    c.faults.payload_loss_prob = 0.2;
    c.faults.payload_corrupt_prob = 0.05;
    c.faults.outages = {{0.0, 60.0}};
    c.faults.crashes = {{1, 1}};
    c.faults.poisoned_stages = {2};
    c.faults.seed = 1234;
    return c;
}

/** Flatten everything observable about a stage for exact replay. */
std::vector<double>
fingerprint(const FleetStageReport& r)
{
    std::vector<double> v = {
        static_cast<double>(r.stage),
        static_cast<double>(r.pooled_uploads),
        static_cast<double>(r.straggler_backlog),
        static_cast<double>(r.retransmits),
        static_cast<double>(r.corrupted),
        static_cast<double>(r.crashed_nodes),
        static_cast<double>(r.update_ran),
        static_cast<double>(r.poisoned),
        static_cast<double>(r.rolled_back),
        r.holdout_before,
        r.holdout_after,
        r.holdout_trained,
        r.mean_accuracy_after,
    };
    for (const auto& n : r.nodes) {
        v.push_back(static_cast<double>(n.acquired));
        v.push_back(static_cast<double>(n.uploaded));
        v.push_back(static_cast<double>(n.backlogged));
        v.push_back(static_cast<double>(n.lost_in_crash));
        v.push_back(static_cast<double>(n.dropped));
        v.push_back(static_cast<double>(n.crashed));
        v.push_back(n.flag_rate);
        v.push_back(n.accuracy_before);
        v.push_back(n.accuracy_after);
    }
    return v;
}

TEST(ChaosFleet, SameSeedBitIdenticalStats)
{
    std::vector<std::vector<double>> runs[2];
    for (auto& run : runs) {
        FleetSim fleet(chaos_fleet_config());
        fleet.bootstrap(40, 0.2);
        for (int s = 0; s < 3; ++s)
            run.push_back(fingerprint(fleet.run_stage(30, 0.25)));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (size_t s = 0; s < runs[0].size(); ++s) {
        ASSERT_EQ(runs[0][s].size(), runs[1][s].size());
        for (size_t i = 0; i < runs[0][s].size(); ++i)
            ASSERT_EQ(runs[0][s][i], runs[1][s][i])
                << "stage " << s << " field " << i;
    }
}

TEST(ChaosFleet, StageCompletesThroughLossAndCrash)
{
    FleetSim fleet(chaos_fleet_config());
    fleet.bootstrap(40, 0.2);

    const FleetStageReport s0 = fleet.run_stage(30, 0.25);
    EXPECT_EQ(s0.crashed_nodes, 0);

    // Stage 1: node 1 reboots; the stage still completes with the
    // survivor's uploads, and the crashed node keeps its model.
    const FleetStageReport s1 = fleet.run_stage(30, 0.25);
    ASSERT_EQ(s1.nodes.size(), 2u);
    EXPECT_EQ(s1.crashed_nodes, 1);
    EXPECT_TRUE(s1.nodes[1].crashed);
    EXPECT_EQ(s1.nodes[1].acquired, 0);
    EXPECT_EQ(s1.nodes[1].uploaded, 0);
    EXPECT_FALSE(s1.nodes[0].crashed);
    // The crashed node rebooted into the fleet's deployed weights.
    const auto cloud_p = fleet.cloud().inference().params();
    const auto node_p = fleet.node(1).inference().network().params();
    for (int64_t i = 0; i < cloud_p[0]->numel(); ++i)
        ASSERT_EQ(node_p[0]->value().at(i), cloud_p[0]->value().at(i));

    // Stage 2 is poisoned: the gate must keep the deployed model
    // from regressing past the tolerance.
    const FleetStageReport s2 = fleet.run_stage(30, 0.25);
    EXPECT_EQ(s2.crashed_nodes, 0);
    if (s2.update_ran) {
        EXPECT_TRUE(s2.poisoned);
        EXPECT_TRUE(s2.rolled_back ||
                    s2.holdout_after + 0.02 >= s2.holdout_before);
    }
    EXPECT_GT(s2.mean_accuracy_after, 0.0);
}

TEST(ChaosFleet, NoFaultPlanMatchesHappyPath)
{
    // With the default (empty) plan the resilience layer is inert:
    // everything flagged is delivered inside the stage window.
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    c.pretrain_epochs = 2;
    c.node_severity_offset = {0.0, 0.15};
    c.seed = 3;
    FleetSim fleet(c);
    fleet.bootstrap(80, 0.2);
    const FleetStageReport report = fleet.run_stage(40, 0.25);
    int64_t flagged_sum = 0;
    for (const auto& nr : report.nodes) {
        EXPECT_EQ(nr.backlogged, 0);
        EXPECT_EQ(nr.dropped, 0);
        EXPECT_FALSE(nr.crashed);
        flagged_sum += nr.uploaded;
    }
    EXPECT_EQ(report.pooled_uploads, flagged_sum);
    EXPECT_EQ(report.retransmits, 0);
    EXPECT_EQ(report.straggler_backlog, 0);
    EXPECT_FALSE(report.poisoned);
}

} // namespace
} // namespace insitu
