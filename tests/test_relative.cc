/**
 * @file
 * Unit tests for the relative-position pretext task (the paper's
 * second cited supervisory signal) and the quantized-deployment
 * accounting it shares the node with.
 */
#include <gtest/gtest.h>

#include "iot/system.h"
#include "models/tiny.h"
#include "nn/quantize.h"
#include "selfsup/relative.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(RelativeBatch, PairsAreCenterPlusCorrectNeighbor)
{
    // Encode tile identity in pixel values to verify the pairing.
    Tensor img({1, 1, 6, 6});
    for (int64_t y = 0; y < 6; ++y)
        for (int64_t x = 0; x < 6; ++x)
            img.at(0, 0, y, x) =
                static_cast<float>((y / 2) * 3 + (x / 2));
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const RelativeBatch batch = make_relative_batch(img, rng);
        ASSERT_EQ(batch.labels.size(), 1u);
        const int64_t label = batch.labels[0];
        EXPECT_GE(label, 0);
        EXPECT_LT(label, kRelativePositions);
        // Slot 0 must be the center tile (value 4 everywhere).
        EXPECT_EQ(batch.pairs.at(0), 4.0f);
        // Slot 1 must be tile (label < 4 ? label : label + 1).
        const float expect_tile =
            static_cast<float>(label < 4 ? label : label + 1);
        EXPECT_EQ(batch.pairs.at(4), expect_tile);
    }
}

TEST(RelativeBatch, LabelsCoverAllPositions)
{
    Rng rng(2);
    Tensor imgs({64, 1, 6, 6});
    const RelativeBatch batch = make_relative_batch(imgs, rng);
    std::vector<int> seen(kRelativePositions, 0);
    for (int64_t l : batch.labels) ++seen[static_cast<size_t>(l)];
    for (int count : seen) EXPECT_GT(count, 0);
}

TEST(RelativeNetwork, ForwardShape)
{
    Rng rng(3);
    TinyConfig config;
    RelativePositionNetwork net = make_tiny_relative(config, rng);
    Tensor imgs({4, 3, 24, 24});
    imgs.fill_uniform(rng, 0.0f, 1.0f);
    const RelativeBatch batch = make_relative_batch(imgs, rng);
    const Tensor logits = net.forward(batch.pairs);
    EXPECT_EQ(logits.dim(0), 4);
    EXPECT_EQ(logits.dim(1), kRelativePositions);
}

TEST(RelativeNetwork, TrainingReducesLoss)
{
    Rng rng(4);
    TinyConfig config;
    RelativePositionNetwork net = make_tiny_relative(config, rng);
    SynthConfig synth;
    const Dataset raw =
        make_dataset(synth, 48, Condition::ideal(), rng);
    Sgd opt({.lr = 0.02, .momentum = 0.9});
    double first = 0.0, last = 0.0;
    for (int step = 0; step < 25; ++step) {
        const RelativeBatch batch =
            make_relative_batch(raw.images, rng);
        const double loss = net.train_batch(opt, batch);
        if (step == 0) first = loss;
        last = loss;
    }
    EXPECT_LT(last, first);
    EXPECT_GT(net.evaluate(raw.images, rng), 1.5 / 8.0);
}

TEST(RelativeNetwork, TrunkShareableWithInference)
{
    Rng rng(5);
    TinyConfig config;
    RelativePositionNetwork pretext = make_tiny_relative(config, rng);
    Network inference = make_tiny_inference(config, rng);
    inference.share_convs_from(pretext.trunk(), 3);
    EXPECT_EQ(inference.shared_conv_prefix(pretext.trunk()), 3u);
}

TEST(RelativeNetwork, ParamsDeduplicated)
{
    Rng rng(6);
    TinyConfig config;
    RelativePositionNetwork net = make_tiny_relative(config, rng);
    const auto params = net.params();
    for (size_t i = 0; i < params.size(); ++i)
        for (size_t j = i + 1; j < params.size(); ++j)
            EXPECT_NE(params[i].get(), params[j].get());
}

TEST(DeployBytes, QuantizedDownlinkIsSmaller)
{
    IotSystemConfig config;
    config.tiny.num_permutations = 8;
    config.link = iot_uplink_spec();
    config.cloud_gpu = titan_x_spec();
    config.update.epochs = 1;
    config.pretrain_epochs = 1;
    config.seed = 9;
    const std::vector<StreamStage> schedule = {
        {40, Condition::ideal()}};

    config.quantized_deployment = true;
    IotSystemSim q(IotSystemKind::kInsituAi, config);
    IotStream sq(config.synth, schedule, 3);
    const auto rq = q.run(sq);

    config.quantized_deployment = false;
    IotSystemSim f(IotSystemKind::kInsituAi, config);
    IotStream sf(config.synth, schedule, 3);
    const auto rf = f.run(sf);

    ASSERT_EQ(rq.size(), 1u);
    EXPECT_GT(rq[0].deploy_bytes, 0.0);
    // int8 payload is roughly a quarter of float32.
    EXPECT_LT(rq[0].deploy_bytes, 0.35 * rf[0].deploy_bytes);
    // Weight sharing: the shared prefix ships once, so the payload is
    // less than inference + full jigsaw.
    EXPECT_LT(rf[0].deploy_bytes,
              float_payload_bytes(f.cloud().inference()) +
                  float_payload_bytes(f.cloud().jigsaw().trunk()) +
                  float_payload_bytes(f.cloud().jigsaw().head()));
}

} // namespace
} // namespace insitu
