/**
 * @file
 * Property-based and parameterized sweeps across the library's
 * invariants: gradient correctness over layer-configuration grids,
 * the im2col/col2im adjoint property over geometry grids, analytical
 * model bounds and monotonicity, permutation-set structure, renderer
 * range safety, and planner feasibility guarantees.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/planner.h"
#include "data/synth.h"
#include "fpga/pipeline.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/grad_check.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lrn.h"
#include "nn/pooling.h"
#include "selfsup/permutation.h"
#include "util/rng.h"

namespace insitu {
namespace {

// ---------------------------------------------------------------
// Gradient correctness over a conv-configuration grid.
// ---------------------------------------------------------------

struct ConvCase {
    int64_t in_ch, out_ch, kernel, stride, pad, size;
};

class ConvGradientSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradientSweep, AnalyticMatchesNumeric)
{
    const ConvCase c = GetParam();
    Rng rng(static_cast<uint64_t>(c.in_ch * 131 + c.out_ch * 17 +
                                  c.kernel));
    Network net("sweep");
    net.emplace<Conv2d>("c", c.in_ch, c.out_ch, c.kernel, c.stride,
                        c.pad, rng);
    net.emplace<Flatten>();
    ConvGeometry g;
    g.in_channels = c.in_ch;
    g.in_h = g.in_w = c.size;
    g.kernel = c.kernel;
    g.stride = c.stride;
    g.pad = c.pad;
    const int64_t feats = c.out_ch * g.out_h() * g.out_w();
    net.emplace<Linear>("fc", feats, 2, rng);

    Tensor x({2, c.in_ch, c.size, c.size});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{0, 1};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    const auto r = check_gradients(net, loss_fn, backward_fn);
    EXPECT_TRUE(r.ok()) << "rel err " << r.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ConvGradientSweep,
    ::testing::Values(ConvCase{1, 2, 1, 1, 0, 5}, // 1x1 kernel
                      ConvCase{2, 3, 3, 1, 0, 6}, // valid conv
                      ConvCase{2, 3, 3, 1, 1, 6}, // same padding
                      ConvCase{1, 4, 3, 2, 1, 7}, // stride 2
                      ConvCase{3, 2, 5, 1, 2, 8}, // 5x5 kernel
                      ConvCase{2, 2, 3, 3, 0, 9}, // stride == kernel
                      ConvCase{4, 4, 2, 2, 0, 8}, // even kernel
                      ConvCase{1, 1, 7, 1, 3, 7})); // kernel == size

// ---------------------------------------------------------------
// Pooling gradients over window/stride combinations.
// ---------------------------------------------------------------

struct PoolCase {
    int64_t kernel, stride, size;
    bool avg;
};

class PoolGradientSweep : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolGradientSweep, AnalyticMatchesNumeric)
{
    const PoolCase c = GetParam();
    Rng rng(static_cast<uint64_t>(c.kernel * 31 + c.stride));
    Network net("pool");
    net.emplace<Conv2d>("c", 1, 2, 3, 1, 1, rng);
    if (c.avg)
        net.emplace<AvgPool2d>("p", c.kernel, c.stride);
    else
        net.emplace<MaxPool2d>("p", c.kernel, c.stride);
    net.emplace<Flatten>();
    const int64_t out = (c.size - c.kernel) / c.stride + 1;
    net.emplace<Linear>("fc", 2 * out * out, 2, rng);

    Tensor x({1, 1, c.size, c.size});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{1};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    EXPECT_TRUE(check_gradients(net, loss_fn, backward_fn).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PoolGradientSweep,
    ::testing::Values(PoolCase{2, 2, 6, false},
                      PoolCase{3, 3, 9, false},
                      PoolCase{3, 2, 7, false}, // overlapping max
                      PoolCase{2, 2, 6, true},
                      PoolCase{3, 3, 9, true},
                      PoolCase{3, 2, 7, true})); // overlapping avg

// ---------------------------------------------------------------
// LRN gradient and normalization properties.
// ---------------------------------------------------------------

TEST(LrnProperty, GradientMatchesNumeric)
{
    Rng rng(77);
    Network net("lrn");
    net.emplace<Conv2d>("c", 2, 6, 3, 1, 1, rng);
    net.emplace<LocalResponseNorm>("n", 5);
    net.emplace<Flatten>();
    net.emplace<Linear>("fc", 6 * 5 * 5, 2, rng);
    Tensor x({1, 2, 5, 5});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{0};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    const auto r = check_gradients(net, loss_fn, backward_fn);
    EXPECT_TRUE(r.ok()) << "rel err " << r.max_rel_error;
}

TEST(LrnProperty, ShrinksLargeActivations)
{
    LocalResponseNorm lrn("n", 5, 1.0, 0.75, 2.0);
    Tensor x({1, 8, 2, 2}, 10.0f);
    const Tensor y = lrn.forward(x, false);
    // With big alpha the normalization must damp the activations.
    EXPECT_LT(y.max(), x.max());
    EXPECT_GT(y.min(), 0.0f);
}

TEST(LrnProperty, NearIdentityForSmallActivations)
{
    LocalResponseNorm lrn("n", 5); // default AlexNet constants
    Rng rng(5);
    Tensor x({1, 8, 3, 3});
    x.fill_uniform(rng, -0.1f, 0.1f);
    const Tensor y = lrn.forward(x, false);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y.at(i), x.at(i) * std::pow(2.0, -0.75), 1e-3);
}

// ---------------------------------------------------------------
// im2col/col2im adjointness over a geometry grid.
// ---------------------------------------------------------------

struct GeomCase {
    int64_t channels, h, w, kernel, stride, pad;
};

class Im2colAdjointSweep : public ::testing::TestWithParam<GeomCase> {
};

TEST_P(Im2colAdjointSweep, ScatterIsAdjointOfGather)
{
    const GeomCase c = GetParam();
    Rng rng(static_cast<uint64_t>(c.h * 7 + c.w * 3 + c.kernel));
    ConvGeometry g;
    g.in_channels = c.channels;
    g.in_h = c.h;
    g.in_w = c.w;
    g.kernel = c.kernel;
    g.stride = c.stride;
    g.pad = c.pad;
    Tensor x({1, c.channels, c.h, c.w});
    x.fill_uniform(rng, -1.0f, 1.0f);
    const Tensor cols = im2col(x, 0, g);
    Tensor y(cols.shape());
    y.fill_uniform(rng, -1.0f, 1.0f);
    double lhs = 0.0;
    for (int64_t i = 0; i < cols.numel(); ++i)
        lhs += static_cast<double>(cols.at(i)) * y.at(i);
    Tensor back({1, c.channels, c.h, c.w});
    col2im_accumulate(y, back, 0, g);
    double rhs = 0.0;
    for (int64_t i = 0; i < x.numel(); ++i)
        rhs += static_cast<double>(x.at(i)) * back.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjointSweep,
    ::testing::Values(GeomCase{1, 4, 4, 2, 1, 0},
                      GeomCase{3, 8, 8, 3, 1, 1},
                      GeomCase{2, 9, 7, 3, 2, 1},
                      GeomCase{4, 6, 6, 5, 1, 2},
                      GeomCase{1, 11, 5, 3, 4, 0},
                      GeomCase{2, 5, 5, 5, 1, 0}));

// ---------------------------------------------------------------
// Analytical model invariants over layer-dimension grids.
// ---------------------------------------------------------------

class UtilizationSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(UtilizationSweep, BothModelsStayInUnitInterval)
{
    const auto [n, m] = GetParam();
    LayerDesc l;
    l.type = LayerType::kConv;
    l.n = n;
    l.m = m;
    l.k = 3;
    l.r = l.c = 13;
    GpuModel gpu(tx1_spec());
    for (int64_t b : {1, 3, 17, 64}) {
        const double u = gpu.utilization(l, b);
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    for (EngineUnroll e : {EngineUnroll{8, 8}, EngineUnroll{16, 32},
                           EngineUnroll{7, 13}}) {
        const double u = FpgaModel::utilization(l, e);
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
        // Eq (4) is exactly 1 when the dims divide the unroll.
        if (n % e.tn == 0 && m % e.tm == 0)
            EXPECT_DOUBLE_EQ(u, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Dimensions, UtilizationSweep,
    ::testing::Combine(::testing::Values<int64_t>(3, 16, 96, 256),
                       ::testing::Values<int64_t>(16, 64, 384)));

TEST(GpuModelProperty, LatencyMonotoneInBatchForAllZooNetworks)
{
    GpuModel gpu(tx1_spec());
    for (const NetworkDesc& net :
         {alexnet_desc(), vgg16_desc(), googlenet_desc(),
          tinynet_desc()}) {
        double prev = 0.0;
        for (int64_t b = 1; b <= 64; b *= 2) {
            const double t = gpu.network_latency(net, b);
            EXPECT_GE(t, prev) << net.name << " batch " << b;
            prev = t;
        }
    }
}

TEST(GpuModelProperty, ThroughputNeverExceedsComputeRoof)
{
    GpuModel gpu(tx1_spec());
    for (const NetworkDesc& net : {alexnet_desc(), vgg16_desc()}) {
        for (int64_t b : {1, 8, 64}) {
            const double ips = gpu.images_per_second(net, b);
            const double roof =
                gpu.spec().peak_ops() / net.total_ops();
            EXPECT_LE(ips, roof * 1.0001) << net.name;
        }
    }
}

TEST(FpgaModelProperty, MorePesNeverSlower)
{
    FpgaModel fpga(vx690t_spec());
    for (const auto& l : alexnet_desc().conv_layers()) {
        double prev = 1e30;
        for (int64_t pes : {64, 256, 1024, 2048}) {
            const EngineUnroll e = best_unroll_for_layer(l, pes);
            const double t = fpga.conv_time_unrolled(l, e);
            EXPECT_LE(t, prev * 1.0001) << l.name << " pes " << pes;
            prev = t;
        }
    }
}

TEST(FpgaModelProperty, BestUnrollBeatsNaiveSquare)
{
    for (const auto& l : alexnet_desc().conv_layers()) {
        const EngineUnroll best = best_unroll_for_layer(l, 1024);
        const EngineUnroll naive = pick_engine_unroll(1024);
        FpgaModel fpga(vx690t_spec());
        EXPECT_LE(fpga.conv_time_unrolled(l, best),
                  fpga.conv_time_unrolled(l, naive) * 1.0001)
            << l.name;
    }
}

// ---------------------------------------------------------------
// Planner feasibility guarantees over requirement grids.
// ---------------------------------------------------------------

class PlannerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PlannerSweep, SingleRunningPickRespectsBudgetWhenPossible)
{
    const double req = GetParam();
    GpuModel gpu(tx1_spec());
    SingleRunningPlanner planner{gpu};
    for (const NetworkDesc& net : {alexnet_desc(), tinynet_desc()}) {
        const int64_t b = planner.max_batch_under_latency(net, req);
        EXPECT_GE(b, 1);
        if (gpu.network_latency(net, 1) <= req)
            EXPECT_LE(gpu.network_latency(net, b), req);
    }
}

TEST_P(PlannerSweep, CoRunningPlanNeverViolatesConstraints)
{
    const double req = GetParam();
    FpgaModel fpga(vx690t_spec());
    CoRunningPlanner planner{fpga};
    const auto plan = planner.plan(alexnet_desc(), req);
    if (plan.feasible) {
        EXPECT_LE(plan.latency, req);
        EXPECT_TRUE(fpga.fits_dsp(plan.config));
    }
}

INSTANTIATE_TEST_SUITE_P(Requirements, PlannerSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.25, 0.5,
                                           1.0));

// ---------------------------------------------------------------
// Permutation-set structure across sizes.
// ---------------------------------------------------------------

class PermutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PermutationSweep, ValidDistinctAndSpread)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    PermutationSet set(GetParam(), rng);
    EXPECT_EQ(set.size(), GetParam());
    for (int i = 0; i < set.size(); ++i)
        EXPECT_TRUE(PermutationSet::is_valid(set.perm(i)));
    if (set.size() > 1) EXPECT_GE(set.min_hamming_distance(), 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSweep,
                         ::testing::Values(1, 2, 8, 24, 64, 100));

// ---------------------------------------------------------------
// Renderer safety across the class x condition grid.
// ---------------------------------------------------------------

TEST(RendererProperty, AllClassesAllConditionsStayInRange)
{
    Rng rng(9);
    SynthConfig config;
    for (int cls = 0; cls < config.num_classes; ++cls) {
        for (double sev : {0.0, 0.3, 0.6, 1.0}) {
            const Tensor img =
                render_image(config, cls, Condition::in_situ(sev), rng);
            EXPECT_GE(img.min(), 0.0f);
            EXPECT_LE(img.max(), 1.0f);
            EXPECT_EQ(img.numel(), 3 * 24 * 24);
        }
    }
}

TEST(SoftmaxProperty, RowsSumToOneAcrossShapes)
{
    Rng rng(11);
    for (int64_t rows : {1, 3, 17}) {
        for (int64_t cols : {2, 10, 100}) {
            Tensor logits({rows, cols});
            logits.fill_uniform(rng, -30.0f, 30.0f);
            const Tensor p = softmax_rows(logits);
            for (int64_t r = 0; r < rows; ++r) {
                double sum = 0.0;
                for (int64_t c = 0; c < cols; ++c) {
                    const float v = p.at(r, c);
                    EXPECT_GE(v, 0.0f);
                    EXPECT_LE(v, 1.0f);
                    sum += v;
                }
                EXPECT_NEAR(sum, 1.0, 1e-5);
            }
        }
    }
}

} // namespace
} // namespace insitu
