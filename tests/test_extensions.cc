/**
 * @file
 * Tests for the extension features: the direct conv backend vs the
 * im2col lowering, sigmoid/tanh activations, the uplink queue, the
 * periodic environment schedule, and labeling-cost accounting.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/schedule.h"
#include "iot/system.h"
#include "iot/uplink.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/grad_check.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(ConvBackend, DirectMatchesIm2colExactly)
{
    Rng rng(1);
    for (int64_t stride : {1, 2}) {
        for (int64_t pad : {0, 1, 2}) {
            Conv2d conv("c", 3, 5, 3, stride, pad, rng);
            Tensor x({2, 3, 9, 9});
            x.fill_uniform(rng, -1.0f, 1.0f);
            conv.set_backend(ConvBackend::kIm2col);
            const Tensor a = conv.forward(x, false);
            conv.set_backend(ConvBackend::kDirect);
            const Tensor b = conv.forward(x, false);
            ASSERT_EQ(a.shape(), b.shape());
            for (int64_t i = 0; i < a.numel(); ++i)
                EXPECT_NEAR(a.at(i), b.at(i), 1e-4f)
                    << "stride " << stride << " pad " << pad;
        }
    }
}

TEST(ConvBackend, DirectForwardWithIm2colBackwardIsConsistent)
{
    // Training with the direct forward must produce the same
    // gradients (backward path is im2col either way).
    Rng rng(2);
    Network net("direct");
    auto conv = std::make_unique<Conv2d>("c", 2, 3, 3, 1, 1, rng);
    conv->set_backend(ConvBackend::kDirect);
    net.add(std::move(conv));
    net.emplace<Flatten>();
    net.emplace<Linear>("fc", 3 * 6 * 6, 2, rng);
    Tensor x({1, 2, 6, 6});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{1};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    EXPECT_TRUE(check_gradients(net, loss_fn, backward_fn).ok());
}

TEST(Activations, SigmoidForwardValues)
{
    Sigmoid s;
    Tensor x({3}, {0.0f, 100.0f, -100.0f});
    const Tensor y = s.forward(x, false);
    EXPECT_NEAR(y.at(0), 0.5f, 1e-6f);
    EXPECT_NEAR(y.at(1), 1.0f, 1e-6f);
    EXPECT_NEAR(y.at(2), 0.0f, 1e-6f);
}

TEST(Activations, TanhForwardValues)
{
    Tanh t;
    Tensor x({2}, {0.0f, 100.0f});
    const Tensor y = t.forward(x, false);
    EXPECT_NEAR(y.at(0), 0.0f, 1e-6f);
    EXPECT_NEAR(y.at(1), 1.0f, 1e-6f);
}

TEST(Activations, SigmoidGradient)
{
    Rng rng(3);
    Network net("sig");
    net.emplace<Linear>("fc1", 4, 6, rng);
    net.emplace<Sigmoid>();
    net.emplace<Linear>("fc2", 6, 2, rng);
    Tensor x({3, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{0, 1, 0};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    EXPECT_TRUE(check_gradients(net, loss_fn, backward_fn).ok());
}

TEST(Activations, TanhGradient)
{
    Rng rng(4);
    Network net("tanh");
    net.emplace<Linear>("fc1", 4, 6, rng);
    net.emplace<Tanh>();
    net.emplace<Linear>("fc2", 6, 2, rng);
    Tensor x({3, 4});
    x.fill_uniform(rng, -1.0f, 1.0f);
    SoftmaxCrossEntropy loss;
    const std::vector<int64_t> labels{1, 0, 1};
    auto loss_fn = [&] {
        return loss.forward(net.forward(x, false), labels);
    };
    auto backward_fn = [&] {
        loss.forward(net.forward(x, false), labels);
        net.backward(loss.backward());
    };
    EXPECT_TRUE(check_gradients(net, loss_fn, backward_fn).ok());
}

TEST(UplinkQueue, DrainsFifoWithBandwidthLimit)
{
    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0; // 1000 bytes/s
    UplinkQueue queue(link, 500.0); // 0.5 s per payload
    queue.enqueue(5, 0.0);
    EXPECT_EQ(queue.backlog(), 5);
    // A 1.2 s window fits two payloads.
    EXPECT_EQ(queue.drain_window(0.0, 1.2), 2);
    EXPECT_EQ(queue.backlog(), 3);
    // A long window clears the rest.
    EXPECT_EQ(queue.drain_window(1.2, 10.0), 3);
    EXPECT_EQ(queue.backlog(), 0);
    EXPECT_EQ(queue.stats().delivered, 5);
    EXPECT_DOUBLE_EQ(queue.stats().bytes_sent, 2500.0);
}

TEST(UplinkQueue, DelayAccountsQueueingTime)
{
    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0;
    UplinkQueue queue(link, 1000.0); // 1 s per payload
    queue.enqueue(2, 0.0);
    queue.drain_window(10.0, 12.0); // transmitted at t=11 and t=12
    EXPECT_EQ(queue.stats().delivered, 2);
    EXPECT_DOUBLE_EQ(queue.stats().mean_delay_s(), 11.5);
}

TEST(UplinkQueue, EnergyMatchesLinkModel)
{
    const LinkSpec link = iot_uplink_spec();
    UplinkQueue queue(link, 1e6);
    queue.enqueue(3, 0.0);
    queue.drain_window(0.0, 1e9);
    EXPECT_DOUBLE_EQ(queue.stats().energy_j,
                     3.0 * link.transfer_energy(1e6));
}

TEST(UplinkQueue, BacklogPeakTracked)
{
    UplinkQueue queue(iot_uplink_spec(), 100.0);
    queue.enqueue(10, 0.0);
    queue.drain_window(0.0, 1e9);
    queue.enqueue(4, 1.0);
    EXPECT_DOUBLE_EQ(queue.stats().max_backlog, 1000.0);
}

TEST(EnvironmentSchedule, NightIsHarsherThanNoon)
{
    EnvironmentSchedule schedule;
    const double night = schedule.severity_at_hours(2.0);
    const double noon = schedule.severity_at_hours(14.0);
    EXPECT_GT(night, noon + 0.2);
    const Condition at_night = schedule.at_hours(2.0);
    const Condition at_noon = schedule.at_hours(14.0);
    EXPECT_LT(at_night.brightness, at_noon.brightness);
}

TEST(EnvironmentSchedule, PeriodicOverDays)
{
    EnvironmentSchedule schedule;
    schedule.drift_per_day = 0.0;
    EXPECT_NEAR(schedule.severity_at_hours(5.0),
                schedule.severity_at_hours(5.0 + 24.0), 1e-9);
}

TEST(EnvironmentSchedule, SeasonalDriftAccumulates)
{
    EnvironmentSchedule schedule;
    schedule.drift_per_day = 0.01;
    EXPECT_NEAR(schedule.severity_at_hours(14.0 + 30 * 24.0) -
                    schedule.severity_at_hours(14.0),
                0.3, 1e-6);
}

TEST(EnvironmentSchedule, SeverityClamped)
{
    EnvironmentSchedule schedule;
    schedule.base_severity = 0.9;
    schedule.night_amplitude = 0.9;
    EXPECT_LE(schedule.severity_at_hours(2.0), 1.0);
}

TEST(LabelingCost, DiagnosisCutsLabeledImages)
{
    IotSystemConfig config;
    config.tiny.num_permutations = 8;
    config.link = iot_uplink_spec();
    config.cloud_gpu = titan_x_spec();
    config.update.epochs = 1;
    config.pretrain_epochs = 2;
    config.incremental_pretrain_epochs = 2;
    config.seed = 77;
    const std::vector<StreamStage> schedule = {
        {120, Condition::in_situ(0.2)},
        {80, Condition::in_situ(0.25)},
        {80, Condition::in_situ(0.3)},
    };

    IotSystemSim all(IotSystemKind::kCloudAll, config);
    IotStream sa(config.synth, schedule, 5);
    const auto ra = all.run(sa);

    IotSystemSim insitu_sys(IotSystemKind::kInsituAi, config);
    IotStream sd(config.synth, schedule, 5);
    const auto rd = insitu_sys.run(sd);

    int64_t labeled_a = 0, labeled_d = 0;
    for (const auto& s : ra) labeled_a += s.labeled_images;
    for (const auto& s : rd) labeled_d += s.labeled_images;
    EXPECT_LT(labeled_d, labeled_a);
    // Stage 0 labels everything in both systems.
    EXPECT_EQ(ra[0].labeled_images, rd[0].labeled_images);
}

} // namespace
} // namespace insitu
