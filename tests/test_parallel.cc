/**
 * @file
 * Tests for the deterministic parallel execution layer: parallel_for
 * semantics (coverage, chunking, edge cases, nesting) and the hard
 * bit-identity guarantee — threads=1 and threads=4 must produce
 * exactly the same floats through conv/linear forward+backward and a
 * full FleetSim bootstrap+stage run.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "iot/fleet.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/lrn.h"
#include "nn/pooling.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace insitu {
namespace {

/// Run @p fn at a forced execution width, then restore the default.
template <typename Fn>
auto
with_threads(int threads, Fn&& fn)
{
    set_num_threads(threads);
    auto result = fn();
    set_num_threads(0);
    return result;
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody)
{
    int calls = 0;
    parallel_for(0, 0, 4, [&](int64_t, int64_t) { ++calls; });
    parallel_for(5, 5, 4, [&](int64_t, int64_t) { ++calls; });
    parallel_for(7, 3, 4, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RangeSmallerThanChunkIsOneInlineCall)
{
    int calls = 0;
    int64_t lo = -1, hi = -1;
    parallel_for(2, 5, 100, [&](int64_t b, int64_t e) {
        ++calls;
        lo = b;
        hi = e;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(lo, 2);
    EXPECT_EQ(hi, 5);
}

TEST(ParallelFor, ChunkCount)
{
    EXPECT_EQ(chunk_count(0, 4), 0);
    EXPECT_EQ(chunk_count(-3, 4), 0);
    EXPECT_EQ(chunk_count(1, 4), 1);
    EXPECT_EQ(chunk_count(4, 4), 1);
    EXPECT_EQ(chunk_count(5, 4), 2);
    EXPECT_EQ(chunk_count(100, 7), 15);
    EXPECT_EQ(chunk_count(10, 0), 10); // grain clamps to 1
}

TEST(ParallelFor, EveryIndexCoveredExactlyOnce)
{
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    with_threads(4, [&] {
        parallel_for(0, n, 7, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) ++hits[i];
        });
        return 0;
    });
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ChunkDecompositionIndependentOfThreadCount)
{
    // Rule 1: record (chunk, begin, end) triples at both widths; the
    // sets must be identical (order of execution may differ).
    auto decompose = [](int threads) {
        return with_threads(threads, [&] {
            std::vector<std::atomic<int64_t>> begins(5), ends(5);
            parallel_for_chunks(
                0, 33, 8, [&](int64_t c, int64_t b, int64_t e) {
                    begins[c].store(b);
                    ends[c].store(e);
                });
            std::vector<std::pair<int64_t, int64_t>> out;
            for (int i = 0; i < 5; ++i)
                out.emplace_back(begins[i].load(), ends[i].load());
            return out;
        });
    };
    const auto serial = decompose(1);
    const auto threaded = decompose(4);
    EXPECT_EQ(serial, threaded);
    EXPECT_EQ(serial.back(), (std::pair<int64_t, int64_t>{32, 33}));
}

TEST(ParallelFor, BackToBackRunsNeverDoubleExecute)
{
    // Regression for the stale-claim race: a worker preempted between
    // claiming an index and validating it could carry that claim into
    // the next run(); with a larger njobs the stale index validated,
    // executing a chunk twice and driving `pending` negative (which
    // hangs a later run). Hammer back-to-back runs with growing job
    // counts — the pattern that exposes it — and require exact
    // single execution throughout.
    with_threads(4, [&] {
        const int64_t max_n = 64;
        std::vector<std::atomic<int>> hits(max_n);
        for (int rep = 0; rep < 2000; ++rep) {
            const int64_t n = 1 + rep % max_n;
            for (auto& h : hits) h.store(0);
            parallel_for(0, n, 1, [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) ++hits[i];
            });
            for (int64_t i = 0; i < n; ++i) {
                EXPECT_EQ(hits[i].load(), 1)
                    << "rep " << rep << " index " << i;
                if (hits[i].load() != 1) return 1; // stop the hammer
            }
        }
        return 0;
    });
}

TEST(ParallelFor, NestedCallsRunInline)
{
    std::atomic<int64_t> total{0};
    with_threads(4, [&] {
        parallel_for(0, 8, 1, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                // Inner loop must not deadlock or misschedule.
                parallel_for(0, 10, 3, [&](int64_t ib, int64_t ie) {
                    total += ie - ib;
                });
            }
        });
        return 0;
    });
    EXPECT_EQ(total.load(), 80);
}

TEST(DeriveStream, DistinctAndStable)
{
    EXPECT_EQ(derive_stream(1, 2, 3), derive_stream(1, 2, 3));
    EXPECT_NE(derive_stream(1, 2, 3), derive_stream(1, 3, 2));
    EXPECT_NE(derive_stream(1, 2, 3), derive_stream(2, 2, 3));
    EXPECT_NE(derive_stream(1, 2, 0), derive_stream(1, 3, 0));
}

/** Forward+backward through one conv layer; returns every float that
 * the pass produced (output, grad_input, weight grad, bias grad). */
std::vector<float>
conv_pass(ConvBackend backend)
{
    Rng rng(7);
    Conv2d conv("c", 3, 8, 3, 1, 1, rng);
    conv.set_backend(backend);
    Tensor x({6, 3, 12, 12});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor y = conv.forward(x, true);
    Tensor gy(y.shape());
    gy.fill_uniform(rng, -1.0f, 1.0f);
    Tensor gx = conv.backward(gy);
    std::vector<float> all;
    auto append = [&all](const Tensor& t) {
        all.insert(all.end(), t.data(), t.data() + t.numel());
    };
    append(y);
    append(gx);
    append(conv.params()[0]->grad());
    append(conv.params()[1]->grad());
    return all;
}

TEST(Determinism, ConvForwardBackwardBitIdentical)
{
    for (ConvBackend backend :
         {ConvBackend::kIm2col, ConvBackend::kDirect}) {
        const auto serial =
            with_threads(1, [&] { return conv_pass(backend); });
        const auto threaded =
            with_threads(4, [&] { return conv_pass(backend); });
        ASSERT_EQ(serial.size(), threaded.size());
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(serial[i], threaded[i])
                << "backend " << static_cast<int>(backend)
                << " diverges at float " << i;
    }
}

std::vector<float>
linear_pass()
{
    Rng rng(9);
    Linear fc("fc", 48, 10, rng);
    Tensor x({16, 48});
    x.fill_uniform(rng, -1.0f, 1.0f);
    Tensor y = fc.forward(x, true);
    Tensor gy(y.shape());
    gy.fill_uniform(rng, -1.0f, 1.0f);
    Tensor gx = fc.backward(gy);
    std::vector<float> all;
    auto append = [&all](const Tensor& t) {
        all.insert(all.end(), t.data(), t.data() + t.numel());
    };
    append(y);
    append(gx);
    append(fc.params()[0]->grad());
    append(fc.params()[1]->grad());
    return all;
}

TEST(Determinism, LinearForwardBackwardBitIdentical)
{
    const auto serial = with_threads(1, [] { return linear_pass(); });
    const auto threaded = with_threads(4, [] { return linear_pass(); });
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], threaded[i]) << "diverges at float " << i;
}

std::vector<float>
pool_lrn_pass()
{
    Rng rng(13);
    Tensor x({4, 6, 10, 10});
    x.fill_uniform(rng, -1.0f, 1.0f);
    MaxPool2d mp("mp", 2, 2);
    AvgPool2d ap("ap", 2, 2);
    LocalResponseNorm lrn("lrn", 5);
    std::vector<float> all;
    auto append = [&all](const Tensor& t) {
        all.insert(all.end(), t.data(), t.data() + t.numel());
    };
    for (Layer* layer :
         std::initializer_list<Layer*>{&mp, &ap, &lrn}) {
        Tensor y = layer->forward(x, true);
        Tensor gy(y.shape());
        gy.fill_uniform(rng, -1.0f, 1.0f);
        append(y);
        append(layer->backward(gy));
    }
    return all;
}

TEST(Determinism, PoolingAndLrnBitIdentical)
{
    const auto serial = with_threads(1, [] { return pool_lrn_pass(); });
    const auto threaded =
        with_threads(4, [] { return pool_lrn_pass(); });
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], threaded[i]) << "diverges at float " << i;
}

/** Bootstrap + one stage of a tiny two-node fleet; flattens the
 * observable outcome (stage report numbers + deployed weights). */
std::vector<double>
fleet_run()
{
    FleetConfig config;
    config.tiny.num_permutations = 8;
    config.update.epochs = 1;
    config.pretrain_epochs = 1;
    config.node_severity_offset = {0.0, 0.2};
    config.seed = 11;
    FleetSim fleet(config);
    std::vector<double> out;
    out.push_back(fleet.bootstrap(40, 0.2));
    const FleetStageReport report = fleet.run_stage(20, 0.3);
    out.push_back(report.mean_accuracy_after);
    out.push_back(report.holdout_before);
    out.push_back(report.holdout_after);
    out.push_back(static_cast<double>(report.pooled_uploads));
    for (const auto& nr : report.nodes) {
        out.push_back(nr.flag_rate);
        out.push_back(nr.accuracy_before);
        out.push_back(nr.accuracy_after);
        out.push_back(static_cast<double>(nr.uploaded));
    }
    const auto params = fleet.cloud().inference().params();
    for (const auto& p : params)
        for (int64_t i = 0; i < p->numel(); ++i)
            out.push_back(p->value().at(i));
    return out;
}

TEST(Determinism, FleetStageBitIdenticalAcrossThreadCounts)
{
    const auto serial = with_threads(1, [] { return fleet_run(); });
    const auto threaded = with_threads(4, [] { return fleet_run(); });
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], threaded[i]) << "diverges at value " << i;
}

} // namespace
} // namespace insitu
