/**
 * @file
 * Unit tests for the model descriptors: Eq. (1) op counts, layer
 * filters and the diagnosis companion geometry.
 */
#include <gtest/gtest.h>

#include "models/descriptor.h"

namespace insitu {
namespace {

TEST(LayerDesc, OpsMatchesEquationOne)
{
    LayerDesc l;
    l.type = LayerType::kConv;
    l.n = 3;
    l.m = 96;
    l.k = 11;
    l.r = 55;
    l.c = 55;
    // 2 * 96 * 3 * 121 * 3025
    EXPECT_DOUBLE_EQ(l.ops(), 2.0 * 96 * 3 * 121 * 3025);
}

TEST(LayerDesc, FcnCounts)
{
    LayerDesc l;
    l.type = LayerType::kFcn;
    l.n = 9216;
    l.m = 4096;
    EXPECT_DOUBLE_EQ(l.ops(), 2.0 * 9216 * 4096);
    EXPECT_DOUBLE_EQ(l.weight_count(), 9216.0 * 4096);
    EXPECT_DOUBLE_EQ(l.input_count(), 9216.0);
    EXPECT_DOUBLE_EQ(l.output_count(), 4096.0);
}

TEST(AlexNet, LayerStructure)
{
    const NetworkDesc d = alexnet_desc();
    EXPECT_EQ(d.conv_layers().size(), 5u);
    EXPECT_EQ(d.fcn_layers().size(), 3u);
    EXPECT_EQ(d.layers.front().m, 96);
    EXPECT_EQ(d.layers.front().k, 11);
}

TEST(AlexNet, TotalOpsNearPublished)
{
    // AlexNet forward is ~1.4-1.5 GFLOPs (single column, no groups).
    const double gflops = alexnet_desc().total_ops() / 1e9;
    EXPECT_GT(gflops, 1.0);
    EXPECT_LT(gflops, 3.5);
}

TEST(AlexNet, WeightsDominatedByFcn)
{
    // The famous AlexNet property the paper's FCN batching exploits:
    // ~90% of weights live in the FC layers.
    const NetworkDesc d = alexnet_desc();
    double fcn_weights = 0.0;
    for (const auto& l : d.fcn_layers()) fcn_weights += l.weight_count();
    EXPECT_GT(fcn_weights / d.total_weights(), 0.85);
}

TEST(Vgg16, TotalOpsNearPublished)
{
    // VGG-16 forward is ~30.9 GFLOPs.
    const double gflops = vgg16_desc().total_ops() / 1e9;
    EXPECT_GT(gflops, 25.0);
    EXPECT_LT(gflops, 40.0);
}

TEST(Vgg16, MuchHeavierThanAlexNet)
{
    // The paper's Fig. 21 observation (VGG keeps the GPU busy even at
    // batch 1) rests on this op-count gap.
    EXPECT_GT(vgg16_desc().total_ops(),
              10.0 * alexnet_desc().total_ops());
}

TEST(GoogleNet, OpsBetweenAlexAndVgg)
{
    const double ops = googlenet_desc().total_ops();
    EXPECT_GT(ops, alexnet_desc().total_ops());
    EXPECT_LT(ops, vgg16_desc().total_ops());
}

TEST(TinyNet, MatchesTrainableArchitecture)
{
    const NetworkDesc d = tinynet_desc();
    EXPECT_EQ(d.conv_layers().size(), 5u);
    EXPECT_EQ(d.fcn_layers().size(), 2u);
    EXPECT_EQ(d.layers.front().n, 3);
    EXPECT_EQ(d.layers.front().m, 16);
}

TEST(Diagnosis, TileOutputsQuarterLoad)
{
    // The paper's WSS sizing rests on the 4:1 compute ratio between
    // the full-image inference conv and the per-tile diagnosis conv.
    const NetworkDesc inf = alexnet_desc();
    const NetworkDesc diag = diagnosis_desc(inf);
    ASSERT_EQ(diag.layers.size(), inf.conv_layers().size());
    for (size_t i = 0; i < diag.layers.size(); ++i) {
        const auto& full = inf.conv_layers()[i];
        const auto& tile = diag.layers[i];
        EXPECT_EQ(tile.r, std::max<int64_t>(1, full.r / 2));
        EXPECT_NEAR(full.ops() / tile.ops(), 4.0, 0.35 * 4.0);
    }
}

TEST(Diagnosis, DropsFcnLayers)
{
    const NetworkDesc diag = diagnosis_desc(alexnet_desc());
    EXPECT_TRUE(diag.fcn_layers().empty());
}

} // namespace
} // namespace insitu
