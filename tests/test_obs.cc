/**
 * @file
 * Tests for the deterministic telemetry layer: metric semantics
 * (sharded counters, inclusive histogram bucket edges, quantized
 * sums), span nesting and parallel-region suppression, exporter
 * goldens, and the hard guarantee the layer is built around —
 * simulated-time telemetry is byte-identical at any thread width.
 * Also exercises the log-level atomic from pool workers (covered by
 * the width-4 and TSan ctest passes).
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/clock.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace insitu {
namespace {

/// Run @p fn at a forced execution width, then restore the default.
template <typename Fn>
auto
with_threads(int threads, Fn&& fn)
{
    set_num_threads(threads);
    auto result = fn();
    set_num_threads(0);
    return result;
}

TEST(Counter, SumsShardsExactly)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Counter, ParallelBumpsMatchSerialAtAnyWidth)
{
    auto bump = [](int threads) {
        return with_threads(threads, [] {
            obs::Counter c;
            parallel_for(0, 1000, 7, [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) c.add(2);
            });
            return c.value();
        });
    };
    EXPECT_EQ(bump(1), 2000);
    EXPECT_EQ(bump(4), 2000);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds)
{
    obs::Histogram h({{1.0, 2.0}, 1e-9});
    h.observe(-1.0); // below-range clamps into the first bucket
    h.observe(1.0);  // exactly on an edge: belongs to that bucket
    h.observe(1.5);
    h.observe(2.0);
    h.observe(2.5); // above the last bound: overflow bucket
    EXPECT_EQ(h.count(), 5);
    const auto buckets = h.bucket_counts();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2); // -1.0, 1.0
    EXPECT_EQ(buckets[1], 2); // 1.5, 2.0
    EXPECT_EQ(buckets[2], 1); // 2.5
    EXPECT_NEAR(h.sum(), 6.0, 1e-6);
}

TEST(Histogram, QuantizedSumIsExactAcrossParallelObservers)
{
    auto observe = [](int threads) {
        return with_threads(threads, [] {
            obs::Histogram h(obs::default_time_options());
            parallel_for(0, 500, 3, [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i)
                    h.observe(0.001 * static_cast<double>(i));
            });
            return h.sum();
        });
    };
    // Integer quanta merge order-independently: not just close, equal.
    EXPECT_EQ(observe(1), observe(4));
}

TEST(Registry, EmptySnapshotHasNoMetrics)
{
    obs::MetricsRegistry registry;
    EXPECT_TRUE(registry.snapshot().metrics.empty());
    EXPECT_EQ(registry.snapshot().find("nope"), nullptr);
}

TEST(Registry, SnapshotIsNameSortedAndHandlesAreStable)
{
    obs::MetricsRegistry registry;
    obs::Counter& b = registry.counter("b.count");
    registry.gauge("a.gauge").set(1.5);
    obs::Counter& b_again = registry.counter("b.count");
    EXPECT_EQ(&b, &b_again);
    b.add(3);
    const auto snap = registry.snapshot();
    ASSERT_EQ(snap.metrics.size(), 2u);
    EXPECT_EQ(snap.metrics[0].name, "a.gauge");
    EXPECT_EQ(snap.metrics[1].name, "b.count");
    EXPECT_EQ(snap.metrics[1].count, 3);
    registry.reset();
    EXPECT_EQ(registry.snapshot().find("b.count")->count, 0);
}

TEST(Registry, GlobalSnapshotMirrorsWidthIndependentPoolTallies)
{
    auto run = [](int threads) {
        return with_threads(threads, [] {
            reset_parallel_stats();
            parallel_for(0, 64, 4, [](int64_t, int64_t) {});
            parallel_for(0, 2, 4, [](int64_t, int64_t) {});
            const auto snap =
                obs::MetricsRegistry::global().snapshot();
            const auto* chunks = snap.find("parallel.chunks");
            const auto* runs = snap.find("parallel.runs");
            EXPECT_NE(chunks, nullptr);
            EXPECT_NE(runs, nullptr);
            return std::pair<int64_t, int64_t>(chunks->count,
                                               runs->count);
        });
    };
    const auto serial = run(1);
    const auto wide = run(4);
    EXPECT_EQ(serial.first, 17); // 16 + 1 chunks, width-independent
    EXPECT_EQ(serial, wide);
}

TEST(ParallelRegion, DetectedOnEveryExecutionPathAtEveryWidth)
{
    for (const int threads : {1, 4}) {
        with_threads(threads, [] {
            EXPECT_FALSE(in_parallel_region());
            parallel_for(0, 8, 1, [](int64_t, int64_t) {
                EXPECT_TRUE(in_parallel_region());
            });
            // Single-chunk shortcut must agree with the pool path.
            parallel_for(0, 3, 8, [](int64_t, int64_t) {
                EXPECT_TRUE(in_parallel_region());
            });
            EXPECT_FALSE(in_parallel_region());
            return 0;
        });
    }
}

TEST(Clock, SimulatedModeIsPinnedToPublishedTime)
{
    auto& clock = obs::TelemetryClock::global();
    clock.enable_simulated(5.0);
    EXPECT_TRUE(clock.simulated());
    EXPECT_DOUBLE_EQ(clock.now_s(), 5.0);
    clock.set_simulated_time_s(9.5);
    EXPECT_DOUBLE_EQ(clock.now_s(), 9.5);
    clock.enable_wall();
    EXPECT_FALSE(clock.simulated());
    clock.set_simulated_time_s(77.0); // no-op in wall mode
    const double a = obs::now_s();
    const double b = obs::now_s();
    EXPECT_LE(a, b); // monotonic hardware seconds, not 77
}

/// One deterministic traced scenario against the global recorder;
/// returns the exported JSONL (spans only — private empty registry).
std::string
traced_scenario()
{
    auto& rec = obs::TraceRecorder::global();
    auto& clock = obs::TelemetryClock::global();
    rec.clear();
    rec.set_enabled(true);
    clock.enable_simulated(100.0);
    {
        obs::ScopedSpan outer("outer", "key", "value");
        clock.set_simulated_time_s(101.0);
        { obs::ScopedSpan inner("inner"); }
        parallel_for(0, 16, 1, [](int64_t, int64_t) {
            // Serial-context-only rule: these must vanish, at every
            // width — a worker-recorded span would interleave
            // nondeterministically.
            obs::ScopedSpan dropped("must-not-appear");
        });
        clock.set_simulated_time_s(102.0);
        rec.instant("tick", {{"n", "1"}});
    }
    std::ostringstream os;
    obs::MetricsRegistry empty;
    obs::export_jsonl(os, empty, rec);
    rec.set_enabled(false);
    rec.clear();
    clock.enable_wall();
    return os.str();
}

TEST(Trace, SimulatedTraceIsByteIdenticalAcrossWidths)
{
    const std::string serial =
        with_threads(1, [] { return traced_scenario(); });
    const std::string wide =
        with_threads(4, [] { return traced_scenario(); });
    EXPECT_EQ(serial, wide);
    EXPECT_NE(serial.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(serial.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(serial.find("\"name\":\"tick\""), std::string::npos);
    EXPECT_EQ(serial.find("must-not-appear"), std::string::npos);
}

TEST(Trace, SpansNestWithParentLinks)
{
    auto& rec = obs::TraceRecorder::global();
    rec.clear();
    rec.set_enabled(true);
    {
        obs::ScopedSpan a("a");
        {
            obs::ScopedSpan b("b");
            rec.instant("leaf");
        }
        obs::ScopedSpan c("c");
    }
    rec.set_enabled(false);
    const auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].name, "a");
    EXPECT_EQ(records[0].parent, -1);
    EXPECT_EQ(records[1].name, "b");
    EXPECT_EQ(records[1].parent, records[0].id);
    EXPECT_EQ(records[2].name, "leaf");
    EXPECT_TRUE(records[2].instant);
    EXPECT_EQ(records[2].parent, records[1].id);
    EXPECT_EQ(records[3].name, "c");
    EXPECT_EQ(records[3].parent, records[0].id);
    rec.clear();
}

TEST(Trace, DisabledRecorderRecordsNothing)
{
    auto& rec = obs::TraceRecorder::global();
    rec.clear();
    {
        obs::ScopedSpan a("invisible");
        rec.instant("also-invisible");
    }
    EXPECT_EQ(rec.size(), 0u);
}

TEST(Export, JsonlGolden)
{
    obs::MetricsRegistry registry;
    registry.counter("a.count").add(3);
    registry.gauge("b.gauge").set(2.5);
    auto& h = registry.histogram("c.hist", {{1.0, 10.0}, 1e-9});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);

    obs::TraceRecorder recorder;
    recorder.set_enabled(true);
    obs::TelemetryClock::global().enable_simulated(7.25);
    const int64_t root = recorder.begin("root");
    recorder.instant("evt");
    recorder.end(root);

    std::ostringstream os;
    obs::export_jsonl(os, registry, recorder);
    obs::TelemetryClock::global().enable_wall();

    EXPECT_EQ(
        os.str(),
        "{\"type\":\"meta\",\"version\":1,\"clock\":\"simulated\","
        "\"dropped_spans\":0}\n"
        "{\"type\":\"counter\",\"name\":\"a.count\",\"value\":3}\n"
        "{\"type\":\"gauge\",\"name\":\"b.gauge\",\"value\":"
        "2.500000000}\n"
        "{\"type\":\"histogram\",\"name\":\"c.hist\",\"count\":3,"
        "\"sum\":55.500000000,\"buckets\":[[1.000000000,1],"
        "[10.000000000,1],[\"inf\",1]],\"p50\":10.000000000,"
        "\"p90\":10.000000000,\"p99\":10.000000000}\n"
        "{\"type\":\"span\",\"id\":0,\"parent\":-1,\"name\":\"root\","
        "\"start\":7.250000000,\"end\":7.250000000}\n"
        "{\"type\":\"instant\",\"id\":1,\"parent\":0,\"name\":\"evt\","
        "\"start\":7.250000000}\n");
}

TEST(Export, ChromeTraceHasCompleteAndInstantEvents)
{
    obs::TraceRecorder recorder;
    recorder.set_enabled(true);
    obs::TelemetryClock::global().enable_simulated(1.0);
    const int64_t root = recorder.begin("work");
    obs::TelemetryClock::global().set_simulated_time_s(2.0);
    recorder.instant("mark");
    recorder.end(root);
    obs::TelemetryClock::global().enable_wall();

    std::ostringstream os;
    obs::export_chrome_trace(os, recorder);
    const std::string trace = os.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(trace.find("\"dur\":1000000.000000000"),
              std::string::npos);
}

TEST(Export, WallOnlyMetricsSuppressedInSimulatedMode)
{
    obs::MetricsRegistry registry;
    registry.counter("a.count").add(1);
    registry.histogram("cloud.update.wall_s").observe(0.5);
    obs::TraceRecorder recorder;

    obs::TelemetryClock::global().enable_simulated(0.0);
    std::ostringstream sim;
    obs::export_jsonl(sim, registry, recorder);
    EXPECT_EQ(sim.str().find("wall_s"), std::string::npos);
    EXPECT_NE(sim.str().find("a.count"), std::string::npos);

    obs::TelemetryClock::global().enable_wall();
    std::ostringstream wall;
    obs::export_jsonl(wall, registry, recorder);
    EXPECT_NE(wall.str().find("cloud.update.wall_s"),
              std::string::npos);
}

TEST(Export, SummaryTableListsEveryMetric)
{
    obs::MetricsRegistry registry;
    registry.counter("x.count").add(7);
    registry.histogram("y.time_s").observe(2.0);
    const std::string table =
        obs::metrics_summary_table(registry).to_string();
    EXPECT_NE(table.find("x.count"), std::string::npos);
    EXPECT_NE(table.find("y.time_s"), std::string::npos);
    EXPECT_NE(table.find("(mean)"), std::string::npos);
}

TEST(Export, JsonEscapeHandlesControlAndQuoteCharacters)
{
    EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Export, EmptyRegistryExportsJustTheMetaLine)
{
    obs::MetricsRegistry registry;
    obs::TraceRecorder recorder;
    obs::TelemetryClock::global().enable_simulated(0.0);
    std::ostringstream os;
    obs::export_jsonl(os, registry, recorder);
    obs::TelemetryClock::global().enable_wall();
    EXPECT_EQ(os.str(),
              "{\"type\":\"meta\",\"version\":1,"
              "\"clock\":\"simulated\",\"dropped_spans\":0}\n");
}

TEST(Export, SingleBucketHistogramQuantilesClampToTheOnlyBound)
{
    obs::MetricsRegistry registry;
    auto& h = registry.histogram("one.hist", {{1.0}, 1e-9});
    h.observe(0.5); // in the single finite bucket
    h.observe(5.0); // overflow
    const auto snap = registry.snapshot();
    const obs::MetricValue* m = snap.find("one.hist");
    ASSERT_NE(m, nullptr);
    // p50 resolves to the finite bound; p99 lands in the overflow
    // bucket, which cannot resolve beyond the last finite bound.
    EXPECT_DOUBLE_EQ(
        obs::histogram_quantile(m->bounds, m->bucket_counts, 0.50),
        1.0);
    EXPECT_DOUBLE_EQ(
        obs::histogram_quantile(m->bounds, m->bucket_counts, 0.99),
        1.0);
    EXPECT_EQ(obs::histogram_percentile_summary(*m),
              "p50=1.000000000 p90=1.000000000 p99=1.000000000");
    // No finite bounds at all: the quantile has nothing to report.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile({}, {2}, 0.5), 0.0);
    // And an empty histogram reports zero, not a crash.
    EXPECT_DOUBLE_EQ(obs::histogram_quantile({1.0}, {0, 0}, 0.5),
                     0.0);
}

TEST(Export, QuantileUsesNearestRankOverBucketCounts)
{
    const std::vector<double> bounds = {1.0, 2.0, 3.0};
    const std::vector<int64_t> counts = {1, 1, 1, 0};
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.0),
                     1.0); // rank clamps to 1
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 0.50),
                     2.0);
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(bounds, counts, 1.0),
                     3.0);
}

TEST(Export, MetricNamesWithSlashesSurviveJsonl)
{
    obs::MetricsRegistry registry;
    registry.counter("bench/gemm.calls").add(2);
    obs::TraceRecorder recorder;
    obs::TelemetryClock::global().enable_simulated(0.0);
    std::ostringstream os;
    obs::export_jsonl(os, registry, recorder);
    obs::TelemetryClock::global().enable_wall();
    EXPECT_NE(os.str().find(
                  "{\"type\":\"counter\",\"name\":\"bench/gemm.calls\""
                  ",\"value\":2}"),
              std::string::npos);
}

TEST(Trace, MintedContextsAreDeterministicAndNeverZero)
{
    const obs::TraceContext a = obs::mint_trace_context(7, 1);
    const obs::TraceContext again = obs::mint_trace_context(7, 1);
    const obs::TraceContext b = obs::mint_trace_context(7, 2);
    EXPECT_EQ(a.trace_id, again.trace_id); // pure function of inputs
    EXPECT_NE(a.trace_id, b.trace_id);
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(obs::TraceContext{}.valid());
}

TEST(Trace, CapacityDropsAreCountedWidthIndependently)
{
    auto run = [](int threads) {
        return with_threads(threads, [] {
            obs::TraceRecorder rec;
            rec.set_enabled(true);
            rec.set_capacity(2);
            EXPECT_EQ(rec.instant_at(1.0, "a"), 0);
            EXPECT_EQ(rec.instant_at(2.0, "b"), 1);
            parallel_for(0, 16, 1, [&](int64_t, int64_t) {
                // Parallel-region records are suppressed silently —
                // they are not capacity drops, so they must not
                // perturb the drop count at any width.
                rec.instant_at(3.0, "suppressed");
            });
            for (int i = 0; i < 3; ++i)
                EXPECT_EQ(rec.instant_at(4.0, "over"), -1);
            return std::pair<size_t, int64_t>(rec.size(),
                                              rec.dropped());
        });
    };
    const auto serial = run(1);
    EXPECT_EQ(serial.first, 2u);
    EXPECT_EQ(serial.second, 3);
    EXPECT_EQ(run(4), serial);
}

TEST(Trace, ClearRestoresTheDefaultCapacity)
{
    obs::TraceRecorder rec;
    rec.set_enabled(true);
    rec.set_capacity(1);
    EXPECT_EQ(rec.instant_at(1.0, "kept"), 0);
    EXPECT_EQ(rec.instant_at(1.0, "dropped"), -1);
    rec.clear();
    EXPECT_EQ(rec.dropped(), 0);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(rec.instant_at(1.0, "fits"), i);
}

TEST(Trace, FlowEdgesLinkSpansAndExportAsChromeFlowEvents)
{
    obs::TraceRecorder rec;
    rec.set_enabled(true);
    obs::TelemetryClock::global().enable_simulated(1.0);
    const int64_t src = rec.instant("src");
    const int64_t dst = rec.instant("dst");

    obs::TraceContext ctx = obs::mint_trace_context(42, 0);
    ctx.parent_span = src;
    rec.flow(ctx, dst);
    // Unminted / dangling-ended edges are ignored, not recorded.
    rec.flow(obs::TraceContext{}, dst);
    rec.flow(ctx, -1);
    ASSERT_EQ(rec.flows().size(), 1u);
    EXPECT_EQ(rec.flows()[0].trace_id, ctx.trace_id);
    EXPECT_EQ(rec.flows()[0].from, src);
    EXPECT_EQ(rec.flows()[0].to, dst);

    std::ostringstream jsonl;
    obs::MetricsRegistry empty;
    obs::export_jsonl(jsonl, empty, rec);
    EXPECT_NE(jsonl.str().find("{\"type\":\"flow\",\"trace\":\""),
              std::string::npos);
    EXPECT_NE(jsonl.str().find("\"from\":0,\"to\":1}"),
              std::string::npos);

    std::ostringstream chrome;
    obs::export_chrome_trace(chrome, rec);
    obs::TelemetryClock::global().enable_wall();
    const std::string trace = chrome.str();
    EXPECT_NE(trace.find("\"cat\":\"flow\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);
}

TEST(Slo, BurnRateAlertRaisesOnBothWindowsAndClearsWithHysteresis)
{
    obs::SloObjective obj;
    obj.name = "test.link";
    obj.objective = 0.5; // budget 0.5: all-bad traffic burns at 2.0
    obj.fast_window_s = 2.0;
    obj.slow_window_s = 4.0;
    obj.burn_alert = 2.0;
    obj.min_events = 4;

    obs::MetricsRegistry registry;
    obs::SloEngine engine(&registry);
    const size_t h = engine.declare(obj);

    // Three bad outcomes: both windows burn at 2.0 but the event
    // floor is not met yet.
    EXPECT_EQ(engine.record(h, 0.1, false), obs::SloEvent::kNone);
    EXPECT_EQ(engine.record(h, 0.2, false), obs::SloEvent::kNone);
    EXPECT_EQ(engine.record(h, 0.3, false), obs::SloEvent::kNone);
    // The fourth crosses min_events: raise exactly once.
    EXPECT_EQ(engine.record(h, 0.4, false),
              obs::SloEvent::kAlertRaised);
    EXPECT_TRUE(engine.tracker(h).alerting());
    EXPECT_EQ(engine.record(h, 0.5, false), obs::SloEvent::kNone);

    // Jump past the slow window so every bucket of bad history ages
    // out; one good outcome drops both burns to 0 -> cleared.
    EXPECT_EQ(engine.record(h, 10.0, true),
              obs::SloEvent::kAlertCleared);
    EXPECT_FALSE(engine.tracker(h).alerting());

    const auto snap = registry.snapshot();
    const auto* alerts = snap.find("slo.test.link.alerts");
    ASSERT_NE(alerts, nullptr);
    EXPECT_EQ(alerts->count, 1);
    const auto* fast = snap.find("slo.test.link.burn_rate.fast");
    ASSERT_NE(fast, nullptr);
    EXPECT_DOUBLE_EQ(fast->value, 0.0); // last record was all-good
}

TEST(Slo, BurnRateIsBadFractionOverBudget)
{
    obs::SloObjective obj;
    obj.name = "x";
    obj.objective = 0.9; // budget 0.1
    obs::BurnRateTracker tracker(obj);
    tracker.record(0.1, true, 8);
    tracker.record(0.1, false, 2);
    // 20% bad over a 10% budget: burning twice too fast.
    EXPECT_DOUBLE_EQ(tracker.fast_burn(), 2.0);
    EXPECT_DOUBLE_EQ(tracker.slow_burn(), 2.0);
}

TEST(Flight, RingWrapsExactlyAtCapacity)
{
    obs::FlightRecorder fr(4);
    for (int i = 0; i < 4; ++i)
        fr.record(static_cast<double>(i),
                  "e" + std::to_string(i), "d");
    // Exactly at capacity: nothing evicted yet.
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.total(), 4);
    EXPECT_EQ(fr.snapshot().front().what, "e0");
    // One past capacity: the oldest goes, order stays oldest-first.
    fr.record(4.0, "e4", "d");
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.total(), 5);
    const auto events = fr.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().what, "e1");
    EXPECT_EQ(events.back().what, "e4");
}

TEST(Flight, EncodeDecodeRoundTripsAndRejectsGarbage)
{
    obs::FlightRecorder fr(3);
    fr.record(1.5, "alpha", "k=1");
    fr.record(2.5, "beta"); // empty detail must survive the trip
    fr.record(3.5, "gamma", "k=3");
    fr.record(4.5, "delta", "k=4"); // evicts "alpha"

    const std::string blob = fr.encode();
    EXPECT_EQ(blob.rfind("flight\tv1\t", 0), 0u);

    std::vector<obs::FlightEvent> out;
    int64_t total = 0;
    ASSERT_TRUE(obs::FlightRecorder::decode(blob, out, &total));
    EXPECT_EQ(total, 4);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].what, "beta");
    EXPECT_EQ(out[0].detail, "");
    EXPECT_DOUBLE_EQ(out[0].t, 2.5);
    EXPECT_EQ(out[2].what, "delta");
    EXPECT_EQ(out[2].detail, "k=4");

    std::vector<obs::FlightEvent> junk;
    EXPECT_FALSE(obs::FlightRecorder::decode("not a dump", junk));
    EXPECT_FALSE(obs::FlightRecorder::decode("", junk));
}

TEST(Logging, LevelIsSafeToFlipWhilePoolWorkersRead)
{
    const LogLevel before = log_level();
    set_log_level(LogLevel::kSilent);
    with_threads(4, [] {
        // Readers (inform/debug suppressed at kSilent — no output)
        // race the flips below; the atomic level keeps this
        // TSan-clean (test_obs runs in the _tsan ctest pass).
        parallel_for(0, 256, 1, [](int64_t b, int64_t) {
            inform("never printed");
            debug("never printed");
            set_log_level(b % 2 == 0 ? LogLevel::kSilent
                                     : LogLevel::kWarn);
        });
        return 0;
    });
    set_log_level(before);
}

} // namespace
} // namespace insitu
