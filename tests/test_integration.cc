/**
 * @file
 * Cross-module integration tests: the full In-situ AI loop at small
 * scale, system-comparison invariants, and deployment round trips
 * through quantization and the registry.
 */
#include <gtest/gtest.h>

#include "cloud/registry.h"
#include "core/framework.h"
#include "nn/quantize.h"

namespace insitu {
namespace {

IotSystemConfig
tiny_system()
{
    IotSystemConfig c;
    c.tiny.num_permutations = 8;
    c.link = iot_uplink_spec();
    c.cloud_gpu = titan_x_spec();
    c.update.epochs = 2;
    c.pretrain_epochs = 2;
    c.incremental_pretrain_epochs = 1;
    c.seed = 13;
    return c;
}

std::vector<StreamStage>
tiny_schedule()
{
    return {
        {120, Condition::in_situ(0.2)},
        {60, Condition::in_situ(0.3)},
        {60, Condition::in_situ(0.35)},
    };
}

TEST(Integration, InsituUploadsNoMoreThanCloudAll)
{
    auto config = tiny_system();
    IotSystemSim a(IotSystemKind::kCloudAll, config);
    IotStream sa(config.synth, tiny_schedule(), 17);
    const auto ra = a.run(sa);
    IotSystemSim d(IotSystemKind::kInsituAi, config);
    IotStream sd(config.synth, tiny_schedule(), 17);
    const auto rd = d.run(sd);
    ASSERT_EQ(ra.size(), rd.size());
    double bytes_a = 0, bytes_d = 0;
    for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_LE(rd[i].uploaded, ra[i].uploaded) << "stage " << i;
        bytes_a += ra[i].upload_bytes;
        bytes_d += rd[i].upload_bytes;
    }
    EXPECT_LT(bytes_d, bytes_a);
}

TEST(Integration, InsituCloudEnergyNoMoreThanCloudAll)
{
    auto config = tiny_system();
    IotSystemSim a(IotSystemKind::kCloudAll, config);
    IotStream sa(config.synth, tiny_schedule(), 19);
    const auto ra = a.run(sa);
    IotSystemSim d(IotSystemKind::kInsituAi, config);
    IotStream sd(config.synth, tiny_schedule(), 19);
    const auto rd = d.run(sd);
    double e_a = 0, e_d = 0;
    for (size_t i = 0; i < ra.size(); ++i) {
        e_a += ra[i].cloud_energy_j;
        e_d += rd[i].cloud_energy_j;
    }
    EXPECT_LT(e_d, e_a);
}

TEST(Integration, WeightSharingHoldsThroughTheWholeLoop)
{
    // After bootstrap + incremental steps, the node's diagnosis trunk
    // must still alias the inference conv prefix, and cloud-side
    // sharing must survive updates.
    FrameworkConfig config;
    config.tiny.num_permutations = 8;
    config.update.epochs = 1;
    config.pretrain_epochs = 1;
    config.seed = 23;
    Framework fw(config);
    Rng rng(29);
    SynthConfig synth;
    fw.bootstrap(make_dataset(synth, 100, Condition::ideal(), rng));
    for (int i = 0; i < 2; ++i) {
        fw.autonomous_step(
            make_dataset(synth, 50, Condition::in_situ(0.3), rng));
    }
    EXPECT_GE(fw.node().diagnosis().network().trunk().shared_conv_prefix(
                  fw.node().inference().network()),
              3u);
    EXPECT_GE(fw.cloud().inference().shared_conv_prefix(
                  fw.cloud().jigsaw().trunk()),
              3u);
    // And the shared storage really is shared: writing through the
    // cloud trunk is visible through the cloud inference net.
    auto ti = fw.cloud().jigsaw().trunk().conv_layer_indices();
    auto ii = fw.cloud().inference().conv_layer_indices();
    auto p = fw.cloud().jigsaw().trunk().layer(ti[0]).params()[0];
    p->value().at(0) = 0.12345f;
    EXPECT_EQ(fw.cloud()
                  .inference()
                  .layer(ii[0])
                  .params()[0]
                  ->value()
                  .at(0),
              0.12345f);
}

TEST(Integration, QuantizedDeploymentPreservesNodePredictions)
{
    // Ship the cloud model to a node through int8 quantization and
    // verify predictions barely move.
    FrameworkConfig config;
    config.tiny.num_permutations = 8;
    config.update.epochs = 2;
    config.pretrain_epochs = 1;
    config.seed = 31;
    Framework fw(config);
    Rng rng(37);
    SynthConfig synth;
    const Dataset data =
        make_dataset(synth, 200, Condition::in_situ(0.2), rng);
    fw.bootstrap(data);

    const double acc_float = fw.node().inference().accuracy(data);
    const QuantizedModel q = quantize_weights(fw.cloud().inference());
    ASSERT_TRUE(dequantize_into(fw.node().inference().network(), q));
    const double acc_int8 = fw.node().inference().accuracy(data);
    EXPECT_GT(acc_int8, acc_float - 0.05);
}

TEST(Integration, RegistryGuardsTheIncrementalLoop)
{
    // Version every update; a deliberately poisoned update must be
    // rolled back to the best version.
    FrameworkConfig config;
    config.tiny.num_permutations = 8;
    config.update.epochs = 2;
    config.pretrain_epochs = 1;
    config.seed = 41;
    Framework fw(config);
    Rng rng(43);
    SynthConfig synth;
    const Dataset holdout =
        make_dataset(synth, 150, Condition::in_situ(0.2), rng);
    fw.bootstrap(holdout);

    ModelRegistry registry;
    const double good_acc = fw.node().inference().accuracy(holdout);
    registry.commit(fw.cloud().inference(), "good", good_acc, 150);

    // Poison the cloud model.
    for (auto& p : fw.cloud().inference().params())
        p->value().fill(0.0f);
    const double bad_acc = [&] {
        InferenceTask probe(
            [&] {
                Rng r(1);
                TinyConfig t = config.tiny;
                Network n = make_tiny_inference(t, r);
                copy_parameters(n, fw.cloud().inference());
                return n;
            }());
        return probe.accuracy(holdout);
    }();
    registry.commit(fw.cloud().inference(), "poisoned", bad_acc, 200);

    const auto rolled =
        registry.rollback_if_regressed(fw.cloud().inference(), 0.02);
    ASSERT_TRUE(rolled.has_value());
    // Redeploy and confirm the node is healthy again.
    fw.node().deploy_inference(fw.cloud().inference());
    EXPECT_NEAR(fw.node().inference().accuracy(holdout), good_acc,
                1e-9);
}

TEST(Integration, StageMetricsAreInternallyConsistent)
{
    auto config = tiny_system();
    IotSystemSim sim(IotSystemKind::kInsituAi, config);
    IotStream stream(config.synth, tiny_schedule(), 47);
    const auto stages = sim.run(stream);
    for (const auto& s : stages) {
        EXPECT_LE(s.uploaded, s.acquired);
        EXPECT_GE(s.upload_bytes, 0.0);
        EXPECT_NEAR(s.upload_bytes,
                    static_cast<double>(s.uploaded) *
                        config.image_scale * bytes_per_image(),
                    1.0);
        EXPECT_GE(s.update_seconds, s.train_seconds);
        EXPECT_GT(s.deploy_bytes, 0.0);
        EXPECT_EQ(s.labeled_images, s.uploaded);
    }
}

} // namespace
} // namespace insitu
