/**
 * @file
 * Unit tests for the edge node: tasks, weight sharing on the node,
 * deployment, stage processing, and the four-system simulator's
 * structural invariants (who uploads what).
 */
#include <gtest/gtest.h>

#include "iot/system.h"

namespace insitu {
namespace {

TinyConfig
small_tiny()
{
    TinyConfig c;
    c.num_permutations = 8;
    return c;
}

TEST(InferenceTask, PredictsEveryImage)
{
    Rng rng(1);
    InferenceTask task(make_tiny_inference(small_tiny(), rng));
    Tensor images({7, 3, 24, 24});
    images.fill_uniform(rng, 0.0f, 1.0f);
    const auto preds = task.predict(images, 3);
    EXPECT_EQ(preds.size(), 7u);
    for (int64_t p : preds) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 10);
    }
}

TEST(DiagnosisTask, FlagsAreDeterministicPerSeed)
{
    Rng rng(2);
    const TinyConfig config = small_tiny();
    PermutationSet perms(config.num_permutations, rng);
    Tensor images({6, 3, 24, 24});
    images.fill_uniform(rng, 0.0f, 1.0f);
    auto make_task = [&]() {
        Rng r(3);
        return DiagnosisTask(make_tiny_jigsaw(config, r), perms,
                             DiagnosisConfig{}, 99);
    };
    DiagnosisTask a = make_task();
    DiagnosisTask b = make_task();
    EXPECT_EQ(a.diagnose(images), b.diagnose(images));
}

TEST(DiagnosisTask, UntrainedNetworkFlagsAlmostEverything)
{
    // An untrained jigsaw head is at chance on the pretext, so nearly
    // all images look "unrecognized" — matching the paper's initial
    // stage where everything uploads.
    Rng rng(4);
    const TinyConfig config = small_tiny();
    PermutationSet perms(config.num_permutations, rng);
    DiagnosisTask task(make_tiny_jigsaw(config, rng), perms,
                       DiagnosisConfig{}, 5);
    SynthConfig synth;
    const Dataset d = make_dataset(synth, 40, Condition::ideal(), rng);
    EXPECT_GT(task.flag_rate(d.images), 0.7);
}

TEST(DiagnosisTask, FlaggedIndicesMatchFlags)
{
    const std::vector<bool> flags = {true, false, true, true, false};
    const auto idx = DiagnosisTask::flagged_indices(flags);
    EXPECT_EQ(idx, (std::vector<int64_t>{0, 2, 3}));
}

TEST(DiagnosisTask, ThresholdValidation)
{
    Rng rng(6);
    const TinyConfig config = small_tiny();
    PermutationSet perms(config.num_permutations, rng);
    DiagnosisConfig bad;
    bad.probes = 2;
    bad.fail_threshold = 3;
    EXPECT_DEATH(DiagnosisTask(make_tiny_jigsaw(config, rng), perms,
                               bad, 7),
                 "threshold");
}

TEST(Node, WeightSharingEstablished)
{
    Rng rng(8);
    const TinyConfig config = small_tiny();
    PermutationSet perms(config.num_permutations, rng);
    InsituNode node(config, perms, 3, DiagnosisConfig{}, 9);
    EXPECT_EQ(node.shared_convs(), 3u);
    EXPECT_GE(node.diagnosis().network().trunk().shared_conv_prefix(
                  node.inference().network()),
              3u);
}

TEST(Node, DeploymentCopiesCloudWeights)
{
    const TinyConfig config = small_tiny();
    ModelUpdateService cloud(config, titan_x_spec(), 10);
    InsituNode node(config, cloud.permutations(), 3,
                    DiagnosisConfig{}, 11);
    // Make the cloud weights distinctive.
    for (auto& p : cloud.inference().params()) p->value().fill(0.5f);
    for (auto& p : cloud.jigsaw().params()) p->value().fill(0.25f);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());
    // Non-shared inference weights must be 0.5.
    const auto ii = node.inference().network().conv_layer_indices();
    EXPECT_EQ(node.inference()
                  .network()
                  .layer(ii[4])
                  .params()[0]
                  ->value()
                  .at(0),
              0.5f);
    // The shared prefix took the inference values (deployed last).
    EXPECT_EQ(node.diagnosis()
                  .network()
                  .trunk()
                  .layer(0)
                  .params()[0]
                  ->value()
                  .at(0),
              0.5f);
    // The head is diagnosis-only: 0.25.
    EXPECT_EQ(node.diagnosis()
                  .network()
                  .head()
                  .layer(0)
                  .params()[0]
                  ->value()
                  .at(0),
              0.25f);
}

TEST(Node, ProcessStageReportsCoherently)
{
    Rng rng(12);
    const TinyConfig config = small_tiny();
    PermutationSet perms(config.num_permutations, rng);
    InsituNode node(config, perms, 3, DiagnosisConfig{}, 13);
    SynthConfig synth;
    const Dataset d =
        make_dataset(synth, 30, Condition::ideal(), rng);
    const NodeStageReport report = node.process_stage(d);
    EXPECT_EQ(report.acquired, 30);
    EXPECT_EQ(report.predictions.size(), 30u);
    EXPECT_EQ(report.flags.size(), 30u);
    int64_t flagged = 0;
    for (bool f : report.flags)
        if (f) ++flagged;
    EXPECT_EQ(report.flagged, flagged);
    ASSERT_TRUE(report.accuracy.has_value());
    EXPECT_GE(*report.accuracy, 0.0);
    EXPECT_LE(*report.accuracy, 1.0);
}

IotSystemConfig
small_system_config()
{
    IotSystemConfig c;
    c.tiny = small_tiny();
    c.link = iot_uplink_spec();
    c.cloud_gpu = titan_x_spec();
    c.update.epochs = 1;
    c.pretrain_epochs = 1;
    c.image_scale = 1000.0;
    c.seed = 21;
    return c;
}

std::vector<StreamStage>
small_schedule()
{
    return {
        {60, Condition::in_situ(0.2)},
        {40, Condition::in_situ(0.3)},
        {40, Condition::in_situ(0.4)},
    };
}

TEST(SystemSim, CloudAllUploadsEverything)
{
    auto config = small_system_config();
    IotSystemSim sim(IotSystemKind::kCloudAll, config);
    IotStream stream(config.synth, small_schedule(), 31);
    const auto stages = sim.run(stream);
    ASSERT_EQ(stages.size(), 3u);
    for (const auto& s : stages) EXPECT_EQ(s.uploaded, s.acquired);
}

TEST(SystemSim, NodeDiagnosisUploadsOnlyFlagged)
{
    auto config = small_system_config();
    IotSystemSim sim(IotSystemKind::kInsituAi, config);
    IotStream stream(config.synth, small_schedule(), 31);
    const auto stages = sim.run(stream);
    ASSERT_EQ(stages.size(), 3u);
    // Stage 0 bootstraps with a full upload.
    EXPECT_EQ(stages[0].uploaded, stages[0].acquired);
    for (size_t i = 1; i < stages.size(); ++i) {
        EXPECT_LE(stages[i].uploaded, stages[i].acquired);
        EXPECT_NEAR(static_cast<double>(stages[i].uploaded) /
                        static_cast<double>(stages[i].acquired),
                    stages[i].flag_rate, 1e-9);
    }
}

TEST(SystemSim, UploadBytesUsePaperScale)
{
    auto config = small_system_config();
    IotSystemSim sim(IotSystemKind::kCloudAll, config);
    IotStream stream(config.synth, {{10, Condition::ideal()}}, 31);
    const auto stages = sim.run(stream);
    EXPECT_DOUBLE_EQ(stages[0].upload_bytes,
                     10.0 * 1000.0 * bytes_per_image());
}

TEST(SystemSim, CloudDiagnosisPaysCloudComputeForFiltering)
{
    auto config = small_system_config();
    IotSystemSim b(IotSystemKind::kCloudDiagnosis, config);
    IotSystemSim c(IotSystemKind::kNodeDiagnosis, config);
    IotStream sb(config.synth, small_schedule(), 31);
    IotStream sc(config.synth, small_schedule(), 31);
    const auto rb = b.run(sb);
    const auto rc = c.run(sc);
    // (b) uploads everything, (c) only the flagged subset.
    EXPECT_GE(rb[1].upload_bytes, rc[1].upload_bytes);
    // Both train on the same flagged subset, but (b) additionally
    // pays for running the diagnosis network in the cloud.
    EXPECT_GT(rb[1].cloud_energy_j, rc[1].cloud_energy_j);
}

TEST(SystemSim, AccuracyImprovesOverBootstrapChance)
{
    auto config = small_system_config();
    config.update.epochs = 4;
    config.update.lr = 0.02;
    config.pretrain_epochs = 2;
    IotSystemSim sim(IotSystemKind::kInsituAi, config);
    IotStream stream(config.synth,
                     {{150, Condition::in_situ(0.2)},
                      {40, Condition::in_situ(0.3)}},
                     31);
    const auto stages = sim.run(stream);
    EXPECT_GT(stages[0].accuracy_after, 0.2); // well above 10% chance
}

TEST(SystemSim, NamesAreStable)
{
    EXPECT_STREQ(iot_system_name(IotSystemKind::kCloudAll),
                 "a:cloud-all");
    EXPECT_STREQ(iot_system_name(IotSystemKind::kInsituAi),
                 "d:in-situ-ai");
}

} // namespace
} // namespace insitu
