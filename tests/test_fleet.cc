/**
 * @file
 * Tests for the multi-node fleet simulator and the quantized-model
 * file artifact.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "iot/fleet.h"
#include "models/tiny.h"
#include "nn/quantize.h"

namespace insitu {
namespace {

FleetConfig
small_fleet()
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    c.pretrain_epochs = 2;
    c.node_severity_offset = {0.0, 0.15};
    c.seed = 3;
    return c;
}

TEST(Fleet, BootstrapDeploysToAllNodes)
{
    FleetSim fleet(small_fleet());
    EXPECT_EQ(fleet.size(), 2u);
    const double acc = fleet.bootstrap(80, 0.2);
    EXPECT_GT(acc, 0.2);
    // Every node carries the cloud's weights after deployment.
    const auto cloud_p = fleet.cloud().inference().params();
    for (size_t n = 0; n < fleet.size(); ++n) {
        const auto node_p =
            fleet.node(n).inference().network().params();
        for (int64_t i = 0; i < cloud_p[0]->numel(); ++i)
            ASSERT_EQ(node_p[0]->value().at(i),
                      cloud_p[0]->value().at(i));
    }
}

TEST(Fleet, StagePoolsUploadsAcrossNodes)
{
    FleetSim fleet(small_fleet());
    fleet.bootstrap(80, 0.2);
    const FleetStageReport report = fleet.run_stage(40, 0.25);
    ASSERT_EQ(report.nodes.size(), 2u);
    int64_t sum = 0;
    for (const auto& nr : report.nodes) {
        EXPECT_EQ(nr.acquired, 40);
        EXPECT_LE(nr.uploaded, nr.acquired);
        sum += nr.uploaded;
    }
    EXPECT_EQ(report.pooled_uploads, sum);
    EXPECT_GE(report.mean_accuracy_after, 0.0);
}

TEST(Fleet, HarsherNodeFlagsMore)
{
    // The node with the bigger severity offset should, on average,
    // find more of its data unrecognized.
    FleetConfig config = small_fleet();
    config.node_severity_offset = {0.0, 0.35};
    FleetSim fleet(config);
    fleet.bootstrap(100, 0.15);
    double mild = 0, harsh = 0;
    for (int s = 0; s < 2; ++s) {
        const auto report = fleet.run_stage(60, 0.15);
        mild += report.nodes[0].flag_rate;
        harsh += report.nodes[1].flag_rate;
    }
    EXPECT_GT(harsh, mild);
}

TEST(Fleet, SingleNodeFleetDegeneratesGracefully)
{
    FleetConfig config = small_fleet();
    config.node_severity_offset = {0.1};
    FleetSim fleet(config);
    EXPECT_EQ(fleet.size(), 1u);
    fleet.bootstrap(60, 0.2);
    const auto report = fleet.run_stage(30, 0.25);
    EXPECT_EQ(report.nodes.size(), 1u);
}

TEST(QuantizedFile, RoundTripThroughDisk)
{
    Rng rng(5);
    TinyConfig config;
    config.num_permutations = 8;
    Network net = make_tiny_inference(config, rng);
    const QuantizedModel model = quantize_weights(net);
    const std::string path = "/tmp/insitu_quant_test.bin";
    ASSERT_TRUE(save_quantized_file(model, path));
    const auto loaded = load_quantized_file(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->params.size(), model.params.size());
    for (size_t i = 0; i < model.params.size(); ++i) {
        EXPECT_EQ(loaded->params[i].name, model.params[i].name);
        EXPECT_EQ(loaded->params[i].shape, model.params[i].shape);
        EXPECT_EQ(loaded->params[i].scale, model.params[i].scale);
        EXPECT_EQ(loaded->params[i].codes, model.params[i].codes);
    }
    // The loaded artifact deploys into a fresh network.
    Network fresh = make_tiny_inference(config, rng);
    EXPECT_TRUE(dequantize_into(fresh, *loaded));
    std::remove(path.c_str());
}

TEST(QuantizedFile, RejectsGarbage)
{
    const std::string path = "/tmp/insitu_quant_garbage.bin";
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a quantized model", f);
        std::fclose(f);
    }
    EXPECT_FALSE(load_quantized_file(path).has_value());
    std::remove(path.c_str());
    EXPECT_FALSE(load_quantized_file("/nonexistent/q.bin").has_value());
}

} // namespace
} // namespace insitu
