/**
 * @file
 * Unit tests for the planners and the measured-GPU stand-in: mode
 * selection, Single-running batch picking (time + resource models),
 * Co-running configuration search, and the Fig. 21 relationships.
 */
#include <gtest/gtest.h>

#include "analytics/measured.h"
#include "analytics/planner.h"

namespace insitu {
namespace {

TEST(Mode, SelectionFollowsAvailabilityRequirement)
{
    EXPECT_EQ(choose_working_mode(true), WorkingMode::kCoRunning);
    EXPECT_EQ(choose_working_mode(false),
              WorkingMode::kSingleRunning);
    EXPECT_STREQ(working_mode_name(WorkingMode::kCoRunning),
                 "Co-running");
}

TEST(SingleRunning, BatchGrowsWithLatencyBudget)
{
    SingleRunningPlanner planner{GpuModel(tx1_spec())};
    const NetworkDesc net = alexnet_desc();
    const int64_t strict = planner.max_batch_under_latency(net, 0.033);
    const int64_t loose = planner.max_batch_under_latency(net, 0.5);
    EXPECT_GE(strict, 1);
    EXPECT_GT(loose, strict);
}

TEST(SingleRunning, PickedBatchMeetsLatency)
{
    GpuModel gpu(tx1_spec());
    SingleRunningPlanner planner{gpu};
    const NetworkDesc net = alexnet_desc();
    for (double req : {0.033, 0.1, 0.4}) {
        const int64_t b = planner.max_batch_under_latency(net, req);
        if (b > 1) {
            EXPECT_LE(gpu.network_latency(net, b), req);
            EXPECT_GT(gpu.network_latency(net, b + 1), req);
        }
    }
}

TEST(SingleRunning, PlanPopulatesBothTasks)
{
    SingleRunningPlanner planner{GpuModel(tx1_spec())};
    const auto plan = planner.plan(
        alexnet_desc(), diagnosis_desc(alexnet_desc()), 0.1);
    EXPECT_GE(plan.inference_batch, 1);
    EXPECT_GT(plan.inference_perf_per_watt, 0.0);
    // Diagnosis batch is memory-limited, not latency-limited, so it
    // should be at least as large as the inference batch.
    EXPECT_GE(plan.diagnosis_batch, plan.inference_batch);
    EXPECT_LE(plan.diagnosis_memory_bytes,
              planner.gpu().spec().mem_capacity);
}

TEST(SingleRunning, ModelPickBeatsNonBatching)
{
    // The heart of Fig. 21: the time-model pick outperforms the
    // non-batching default on throughput.
    GpuModel gpu(tx1_spec());
    SingleRunningPlanner planner{gpu};
    const NetworkDesc net = alexnet_desc();
    const int64_t b = planner.max_batch_under_latency(net, 0.25);
    EXPECT_GT(gpu.images_per_second(net, b),
              2.0 * gpu.images_per_second(net, 1));
}

TEST(SingleRunning, VggGainSmallerThanAlexNet)
{
    // Fig. 21: AlexNet gains ~3x from batching, VGG only ~1.1x,
    // because VGG already saturates the device at batch 1.
    GpuModel gpu(tx1_spec());
    SingleRunningPlanner planner{gpu};
    auto gain = [&](const NetworkDesc& net) {
        const int64_t b = planner.max_batch_under_latency(net, 2.0);
        return gpu.images_per_second(net, b) /
               gpu.images_per_second(net, 1);
    };
    EXPECT_GT(gain(alexnet_desc()), 1.5 * gain(vgg16_desc()));
}

TEST(CoRunning, PlanFitsDspAndLatency)
{
    CoRunningPlanner planner{FpgaModel(vx690t_spec())};
    const auto plan = planner.plan(alexnet_desc(), 0.2);
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(planner.fpga().fits_dsp(plan.config));
    EXPECT_LE(plan.latency, 0.2);
    EXPECT_GT(plan.throughput, 0.0);
}

TEST(CoRunning, LooserLatencyNeverHurtsThroughput)
{
    CoRunningPlanner planner{FpgaModel(vx690t_spec())};
    const NetworkDesc net = alexnet_desc();
    double prev = 0.0;
    for (double req : {0.05, 0.1, 0.2, 0.4, 0.8}) {
        const auto plan = planner.plan(net, req);
        ASSERT_TRUE(plan.feasible) << req;
        EXPECT_GE(plan.throughput, prev * 0.999);
        prev = plan.throughput;
    }
}

TEST(MeasuredGpu, DeviatesFromModelBoundedly)
{
    GpuModel model(tx1_spec());
    MeasuredGpu measured(model, MeasuredGpuConfig{});
    const NetworkDesc net = alexnet_desc();
    for (int64_t b : {1, 4, 16, 64}) {
        const double m = model.network_latency(net, b);
        const double r = measured.network_latency(net, b);
        EXPECT_GT(r, 0.8 * m);
        EXPECT_LT(r, 1.5 * m);
    }
}

TEST(MeasuredGpu, Deterministic)
{
    MeasuredGpu a(GpuModel(tx1_spec()), MeasuredGpuConfig{});
    MeasuredGpu b(GpuModel(tx1_spec()), MeasuredGpuConfig{});
    EXPECT_DOUBLE_EQ(a.network_latency(alexnet_desc(), 8),
                     b.network_latency(alexnet_desc(), 8));
}

TEST(MeasuredGpu, ProfiledBestRespectsLatency)
{
    MeasuredGpu measured(GpuModel(tx1_spec()), MeasuredGpuConfig{});
    const NetworkDesc net = alexnet_desc();
    const int64_t best = measured.best_batch_by_profiling(net, 0.2);
    EXPECT_LE(measured.network_latency(net, best), 0.2);
    // Brute force is at least as good as any single candidate.
    EXPECT_GE(measured.images_per_second(net, best),
              measured.images_per_second(net, 1));
}

TEST(MeasuredGpu, ModelPickCloseToProfiledBest)
{
    // Fig 21: "the performance achieved by our method is close to the
    // best case" — within 15% on throughput.
    GpuModel model(tx1_spec());
    MeasuredGpu measured(model, MeasuredGpuConfig{});
    SingleRunningPlanner planner{model};
    const NetworkDesc net = alexnet_desc();
    for (double req : {0.1, 0.25, 0.5}) {
        const int64_t model_pick =
            planner.max_batch_under_latency(net, req);
        const int64_t best =
            measured.best_batch_by_profiling(net, req);
        const double model_tp =
            measured.images_per_second(net, model_pick);
        const double best_tp = measured.images_per_second(net, best);
        EXPECT_GE(model_tp, 0.85 * best_tp) << "req " << req;
    }
}

} // namespace
} // namespace insitu
