/**
 * @file
 * The blocked GEMM against the naive reference, the workspace arena,
 * and the exact FLOP accounting contract.
 *
 * The shape sweep runs every m,k,n in {1,2,3,5,8,13,32,64} — prime,
 * power-of-two, and sub-microkernel sizes — through all three
 * transpose variants, so every ragged-edge path of the packing and
 * microkernel (partial MR rows, partial NR columns, short K) is
 * exercised. Blocked vs naive must agree to float tolerance;
 * byte-identity across thread widths is asserted separately on shapes
 * that cross the MC/KC/NC block boundaries.
 */
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace insitu {
namespace {

std::vector<float>
random_vec(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n));
    for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
    return v;
}

/// |a - b| <= tol * max(1, |a|, |b|) elementwise.
void
expect_close(const std::vector<float>& a, const std::vector<float>& b,
             float tol, const char* what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        const float scale = std::max(
            1.0f, std::max(std::fabs(a[i]), std::fabs(b[i])));
        ASSERT_NEAR(a[i], b[i], tol * scale)
            << what << " at flat index " << i;
    }
}

constexpr int64_t kSizes[] = {1, 2, 3, 5, 8, 13, 32, 64};

/// Run one (m,k,n) through both backends with the given logical
/// strides and compare.
void
check_variant(int64_t m, int64_t n, int64_t k, const float* a,
              int64_t a_rs, int64_t a_cs, const float* b, int64_t b_rs,
              int64_t b_cs, const char* what)
{
    std::vector<float> blocked(static_cast<size_t>(m * n), -7.0f);
    std::vector<float> naive(static_cast<size_t>(m * n), 7.0f);
    gemm(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, blocked.data(),
         GemmBackend::kBlocked);
    gemm(m, n, k, a, a_rs, a_cs, b, b_rs, b_cs, naive.data(),
         GemmBackend::kNaive);
    expect_close(blocked, naive, 1e-4f, what);
}

TEST(GemmSweep, BlockedMatchesNaiveAllVariants)
{
    for (int64_t m : kSizes) {
        for (int64_t k : kSizes) {
            for (int64_t n : kSizes) {
                SCOPED_TRACE(testing::Message()
                             << "m=" << m << " k=" << k << " n=" << n);
                const auto va = random_vec(m * k, 17 * m + 3 * k + n);
                const auto vb = random_vec(k * n, 29 * k + 5 * n + m);
                // matmul: A stored (m,k), B stored (k,n).
                check_variant(m, n, k, va.data(), k, 1, vb.data(), n, 1,
                              "matmul");
                // matmul_ta: A stored (k,m) — reuse va as the (k,m)
                // buffer; logical A(i,kk) = va[kk*m + i].
                check_variant(m, n, k, va.data(), 1, m, vb.data(), n, 1,
                              "matmul_ta");
                // matmul_tb: B stored (n,k) — reuse vb as the (n,k)
                // buffer; logical B(kk,j) = vb[j*k + kk].
                check_variant(m, n, k, va.data(), k, 1, vb.data(), 1, k,
                              "matmul_tb");
            }
        }
    }
}

TEST(GemmSweep, KZeroZeroFillsC)
{
    std::vector<float> c(6, 123.0f);
    gemm(2, 3, 0, nullptr, 1, 1, nullptr, 1, 1, c.data(),
         GemmBackend::kBlocked);
    for (float v : c) EXPECT_EQ(v, 0.0f);
}

/// Shapes that cross every block boundary (m > MC=64, k > KC=256,
/// n > NC=1024 in the widest case) must be byte-identical at widths
/// 1 and 4 — the determinism contract of docs/performance.md.
TEST(GemmDeterminism, BitIdenticalAcrossThreadWidths)
{
    struct Shape {
        int64_t m, k, n;
    };
    const Shape shapes[] = {
        {70, 300, 90},   // crosses MC and KC
        {130, 40, 1100}, // crosses MC and NC
        {64, 256, 64},   // exact block multiples
        {3, 5, 2},       // sub-microkernel
    };
    for (const auto& s : shapes) {
        SCOPED_TRACE(testing::Message() << "m=" << s.m << " k=" << s.k
                                        << " n=" << s.n);
        const auto va = random_vec(s.m * s.k, 101);
        const auto vb = random_vec(s.k * s.n, 202);
        std::vector<float> c1(static_cast<size_t>(s.m * s.n));
        std::vector<float> c4(static_cast<size_t>(s.m * s.n));
        set_num_threads(1);
        gemm(s.m, s.n, s.k, va.data(), s.k, 1, vb.data(), s.n, 1,
             c1.data(), GemmBackend::kBlocked);
        set_num_threads(4);
        gemm(s.m, s.n, s.k, va.data(), s.k, 1, vb.data(), s.n, 1,
             c4.data(), GemmBackend::kBlocked);
        set_num_threads(0);
        EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                                 c1.size() * sizeof(float)));
    }
}

TEST(GemmDeterminism, TensorWrappersBitIdenticalAcrossWidths)
{
    Rng rng(7);
    Tensor a({67, 129}), b({129, 71});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    set_num_threads(1);
    const Tensor c1 = matmul(a, b);
    set_num_threads(4);
    const Tensor c4 = matmul(a, b);
    set_num_threads(0);
    ASSERT_TRUE(c1.same_shape(c4));
    EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                             static_cast<size_t>(c1.numel()) *
                                 sizeof(float)));
}

TEST(GemmBackendSwitch, ProgrammaticOverride)
{
    const GemmBackend prev = gemm_backend();
    set_gemm_backend(GemmBackend::kNaive);
    EXPECT_EQ(gemm_backend(), GemmBackend::kNaive);
    EXPECT_STREQ(gemm_backend_name(), "naive");
    set_gemm_backend(GemmBackend::kBlocked);
    EXPECT_EQ(gemm_backend(), GemmBackend::kBlocked);
    EXPECT_STREQ(gemm_backend_name(), "blocked");
    set_gemm_backend(prev);
}

// --- FLOP accounting ----------------------------------------------

int64_t
counter_value(const char* name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

TEST(GemmFlops, MatmulCountsExactly2MKN)
{
    const int64_t m = 13, k = 37, n = 21;
    Rng rng(11);
    Tensor a({m, k}), b({k, n});
    a.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    const int64_t calls0 = counter_value("tensor.matmul.calls");
    const int64_t flops0 = counter_value("tensor.matmul.flops");
    (void)matmul(a, b);
    EXPECT_EQ(counter_value("tensor.matmul.calls") - calls0, 1);
    EXPECT_EQ(counter_value("tensor.matmul.flops") - flops0,
              2 * m * k * n);
}

TEST(GemmFlops, TransposedWrappersCountExactly2MKN)
{
    const int64_t m = 9, k = 14, n = 6;
    Rng rng(12);
    Tensor at({k, m}), b({k, n}), a({m, k}), bt({n, k});
    at.fill_uniform(rng, -1.0f, 1.0f);
    b.fill_uniform(rng, -1.0f, 1.0f);
    a.fill_uniform(rng, -1.0f, 1.0f);
    bt.fill_uniform(rng, -1.0f, 1.0f);
    const int64_t ta0 = counter_value("tensor.matmul_ta.flops");
    const int64_t tb0 = counter_value("tensor.matmul_tb.flops");
    (void)matmul_ta(at, b);
    (void)matmul_tb(a, bt);
    EXPECT_EQ(counter_value("tensor.matmul_ta.flops") - ta0,
              2 * m * k * n);
    EXPECT_EQ(counter_value("tensor.matmul_tb.flops") - tb0,
              2 * m * k * n);
}

// --- workspace arena ----------------------------------------------

TEST(WorkspaceArena, AllocIsAligned)
{
    Workspace::Scope scope;
    float* p = Workspace::local().alloc(3); // deliberately unround
    float* q = Workspace::local().alloc(5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 64, 0u);
}

TEST(WorkspaceArena, RegrowsToHighWaterAndStopsOverflowing)
{
    auto& ws = Workspace::local();
    {
        Workspace::Scope scope;
        float* p = ws.alloc(1 << 12);
        p[0] = 1.0f; // touch it
    }
    // The outermost-scope close regrows the backing block to the
    // high-water mark, so the same workload no longer overflows.
    ASSERT_GE(ws.capacity(), static_cast<size_t>(1 << 12));
    const int64_t overflow0 = ws.overflow_allocs();
    for (int pass = 0; pass < 3; ++pass) {
        Workspace::Scope scope;
        float* p = ws.alloc(1 << 12);
        p[0] = static_cast<float>(pass);
    }
    EXPECT_EQ(ws.overflow_allocs(), overflow0);
}

TEST(WorkspaceArena, ScopesReleaseLifo)
{
    auto& ws = Workspace::local();
    // Warm the arena so both allocs come from the backing block.
    {
        Workspace::Scope warm;
        (void)ws.alloc(1 << 10);
    }
    Workspace::Scope outer;
    float* a = ws.alloc(64);
    float* inner_first = nullptr;
    {
        Workspace::Scope inner;
        inner_first = ws.alloc(64);
    }
    // After the inner scope closed, its space is reused.
    float* b = ws.alloc(64);
    EXPECT_EQ(b, inner_first);
    EXPECT_NE(a, b);
}

// Repeated conv-style work through the real kernels: after the first
// image the arena is warm and nothing further overflows.
TEST(WorkspaceArena, ConvPathReusesArena)
{
    Rng rng(3);
    Tensor x({4, 3, 12, 12});
    x.fill_uniform(rng, -1.0f, 1.0f);
    ConvGeometry g;
    g.in_channels = 3;
    g.in_h = g.in_w = 12;
    g.kernel = 3;
    g.pad = 1;
    Tensor w({8, 3, 3, 3}), bias({8});
    w.fill_uniform(rng, -0.5f, 0.5f);
    // Warm pass, then measure.
    (void)conv2d_direct(x, w, bias, g);
    std::vector<float> cols(static_cast<size_t>(3 * 3 * 3 * 12 * 12));
    auto& ws = Workspace::local();
    {
        Workspace::Scope scope;
        float* buf = ws.alloc(static_cast<int64_t>(cols.size()));
        im2col_into(x, 0, g, buf);
    }
    const int64_t overflow0 = ws.overflow_allocs();
    for (int64_t b = 0; b < 4; ++b) {
        Workspace::Scope scope;
        float* buf = ws.alloc(static_cast<int64_t>(cols.size()));
        im2col_into(x, b, g, buf);
    }
    EXPECT_EQ(ws.overflow_allocs(), overflow0);
}

// --- uninitialized tensors ----------------------------------------

TEST(TensorUninitialized, ShapeAndWritability)
{
    Tensor t = Tensor::uninitialized({3, 5});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.numel(), 15);
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = static_cast<float>(i);
    EXPECT_EQ(t.at(2, 4), 14.0f);
}

TEST(TensorUninitialized, ValueConstructorsStillZeroOrCopy)
{
    Tensor z({2, 2});
    for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(z.data()[i], 0.0f);
    Tensor c({2, 2}, std::vector<float>{1, 2, 3, 4});
    EXPECT_EQ(c.at(1, 1), 4.0f);
}

} // namespace
} // namespace insitu
