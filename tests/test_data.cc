/**
 * @file
 * Unit tests for the synthetic data generator: conditions, rendering,
 * datasets and the staged IoT stream — including the key property
 * that in-situ conditions actually shift the distribution.
 */
#include <gtest/gtest.h>

#include "data/condition.h"
#include "data/stream.h"
#include "data/synth.h"
#include "util/rng.h"

namespace insitu {
namespace {

TEST(Condition, InSituSeverityMonotone)
{
    const Condition mild = Condition::in_situ(0.2);
    const Condition harsh = Condition::in_situ(0.8);
    EXPECT_GT(mild.brightness, harsh.brightness);
    EXPECT_LT(mild.noise_std, harsh.noise_std);
    EXPECT_LT(mild.occlusion_prob, harsh.occlusion_prob);
}

TEST(Condition, SeverityClamped)
{
    const Condition below = Condition::in_situ(-1.0);
    const Condition ideal = Condition::in_situ(0.0);
    EXPECT_EQ(below.brightness, ideal.brightness);
    const Condition above = Condition::in_situ(2.0);
    const Condition max = Condition::in_situ(1.0);
    EXPECT_EQ(above.noise_std, max.noise_std);
}

TEST(Render, ShapeAndRange)
{
    Rng rng(1);
    SynthConfig config;
    const Tensor img =
        render_image(config, 0, Condition::ideal(), rng);
    EXPECT_EQ(img.shape(), (std::vector<int64_t>{3, 24, 24}));
    EXPECT_GE(img.min(), 0.0f);
    EXPECT_LE(img.max(), 1.0f);
}

TEST(Render, AllClassesRender)
{
    Rng rng(2);
    SynthConfig config;
    for (int cls = 0; cls < config.num_classes; ++cls) {
        const Tensor img =
            render_image(config, cls, Condition::ideal(), rng);
        // A subject must be visible: the image is not constant.
        EXPECT_GT(img.max() - img.min(), 0.1f) << class_name(cls);
    }
}

TEST(Render, ClassesAreVisuallyDistinct)
{
    // Mean per-class images (averaging out pose/color jitter) must
    // differ pairwise; otherwise the classification task is ill-posed.
    Rng rng(3);
    SynthConfig config;
    const int64_t per_class = 20;
    std::vector<Tensor> means;
    for (int cls = 0; cls < config.num_classes; ++cls) {
        Tensor acc({3, 24, 24});
        for (int64_t i = 0; i < per_class; ++i)
            acc += render_image(config, cls, Condition::ideal(), rng);
        acc *= 1.0f / static_cast<float>(per_class);
        means.push_back(acc);
    }
    for (size_t a = 0; a < means.size(); ++a) {
        for (size_t b = a + 1; b < means.size(); ++b) {
            const Tensor diff = means[a] - means[b];
            EXPECT_GT(diff.squared_norm(), 1.0)
                << class_name(static_cast<int>(a)) << " vs "
                << class_name(static_cast<int>(b));
        }
    }
}

TEST(Render, NightImagesAreDarker)
{
    Rng rng(4);
    SynthConfig config;
    double ideal_mean = 0.0, night_mean = 0.0;
    for (int i = 0; i < 30; ++i) {
        ideal_mean +=
            render_image(config, i % 10, Condition::ideal(), rng)
                .mean();
        night_mean +=
            render_image(config, i % 10, Condition::night(), rng)
                .mean();
    }
    EXPECT_LT(night_mean, ideal_mean * 0.7);
}

TEST(Render, InSituImagesAreNoisier)
{
    // High-frequency energy (adjacent-pixel differences) grows with
    // the condition's sensor noise.
    Rng rng(5);
    SynthConfig config;
    auto hf_energy = [&](const Condition& cond) {
        double acc = 0.0;
        for (int i = 0; i < 20; ++i) {
            const Tensor img = render_image(config, i % 10, cond, rng);
            for (int64_t p = 1; p < img.numel(); ++p) {
                const double d = img.at(p) - img.at(p - 1);
                acc += d * d;
            }
        }
        return acc;
    };
    // Isolate the noise axis: same photometry, different sensor
    // noise.
    Condition quiet = Condition::ideal();
    quiet.noise_std = 0.0;
    Condition noisy = Condition::ideal();
    noisy.noise_std = 0.15;
    EXPECT_GT(hf_energy(noisy), 2.0 * hf_energy(quiet));
}

TEST(Render, DeterministicGivenSeed)
{
    SynthConfig config;
    Rng a(42), b(42);
    const Tensor x = render_image(config, 3, Condition::ideal(), a);
    const Tensor y = render_image(config, 3, Condition::ideal(), b);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_EQ(x.at(i), y.at(i));
}

TEST(Dataset, BalancedLabels)
{
    Rng rng(6);
    SynthConfig config;
    const Dataset d =
        make_dataset(config, 500, Condition::ideal(), rng);
    EXPECT_EQ(d.size(), 500);
    std::vector<int> counts(10, 0);
    for (int64_t lbl : d.labels)
        ++counts[static_cast<size_t>(lbl)];
    for (int c : counts) {
        EXPECT_GT(c, 20);
        EXPECT_LT(c, 100);
    }
}

TEST(Dataset, ConcatAndSlice)
{
    Rng rng(7);
    SynthConfig config;
    const Dataset a = make_dataset(config, 10, Condition::ideal(), rng);
    const Dataset b = make_dataset(config, 5, Condition::night(), rng);
    const Dataset both = concat_datasets({&a, &b});
    EXPECT_EQ(both.size(), 15);
    EXPECT_EQ(both.labels[12], b.labels[2]);
    const Dataset tail = dataset_slice(both, 10, 15);
    EXPECT_EQ(tail.size(), 5);
    EXPECT_EQ(tail.labels[0], b.labels[0]);
    for (int64_t i = 0; i < tail.images.numel(); ++i)
        EXPECT_EQ(tail.images.at(i), b.images.at(i));
}

TEST(Stream, StagesYieldScheduledCounts)
{
    SynthConfig config;
    std::vector<StreamStage> stages = {
        {10, Condition::ideal()},
        {20, Condition::night()},
    };
    IotStream stream(config, stages, 99);
    EXPECT_EQ(stream.total_count(), 30);
    const Dataset first = stream.next_stage();
    EXPECT_EQ(first.size(), 10);
    EXPECT_EQ(first.condition.name, "ideal");
    const Dataset second = stream.next_stage();
    EXPECT_EQ(second.size(), 20);
    EXPECT_EQ(second.condition.name, "night");
    EXPECT_TRUE(stream.exhausted());
    EXPECT_DEATH(stream.next_stage(), "exhausted");
}

TEST(Stream, ResetReplaysIdentically)
{
    SynthConfig config;
    IotStream stream(config, {{5, Condition::in_situ(0.5)}}, 123);
    const Dataset a = stream.next_stage();
    stream.reset();
    const Dataset b = stream.next_stage();
    EXPECT_EQ(a.labels, b.labels);
    for (int64_t i = 0; i < a.images.numel(); ++i)
        EXPECT_EQ(a.images.at(i), b.images.at(i));
}

TEST(Stream, PaperScheduleCumulativeCounts)
{
    const auto stages = paper_incremental_schedule(0.01);
    ASSERT_EQ(stages.size(), 5u);
    EXPECT_EQ(stages[0].count, 1000);
    EXPECT_EQ(stages[1].count, 1000);
    EXPECT_EQ(stages[2].count, 2000);
    EXPECT_EQ(stages[3].count, 4000);
    EXPECT_EQ(stages[4].count, 4000);
    // Conditions get harsher stage over stage.
    for (size_t i = 1; i < stages.size(); ++i)
        EXPECT_LT(stages[i].condition.brightness,
                  stages[i - 1].condition.brightness);
}

TEST(ClassName, KnownNames)
{
    EXPECT_EQ(class_name(0), "circle");
    EXPECT_EQ(class_name(9), "cross");
    EXPECT_DEATH(class_name(10), "out of range");
}

} // namespace
} // namespace insitu
