/**
 * @file
 * Unit tests for util: RNG determinism/statistics, table and CSV
 * rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

namespace insitu {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMeanAndVariance)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(19);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(23);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniform_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_FALSE(v == sorted); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(31);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent.next_u64() == child.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Table, RendersAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| name  | value |"), std::string::npos);
    EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(Table, RowArityMismatchPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

TEST(Csv, BasicRoundTrip)
{
    CsvWriter w({"x", "y"});
    w.add_row({"1", "2"});
    EXPECT_EQ(w.to_string(), "x,y\n1,2\n");
}

TEST(Csv, EscapesSpecialCharacters)
{
    CsvWriter w({"text"});
    w.add_row({"hello, \"world\""});
    EXPECT_EQ(w.to_string(), "text\n\"hello, \"\"world\"\"\"\n");
}

} // namespace
} // namespace insitu
