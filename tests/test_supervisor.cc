/**
 * @file
 * Tests for the self-healing supervision layer: the circuit-breaker
 * state machine and its energy savings under a flapping link,
 * crash-loop quarantine and re-admission, canary selection/judgment,
 * and the full supervised-vs-unsupervised chaos-fleet acceptance
 * scenario (including bit-identical replay across thread counts).
 */
#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "iot/fleet.h"
#include "iot/supervisor.h"
#include "iot/uplink.h"
#include "util/parallel.h"

namespace insitu {
namespace {

TEST(CircuitBreaker, StateMachineTransitions)
{
    BreakerConfig config;
    config.failure_threshold = 3;
    config.cooldown_s = 8.0;
    config.probe_successes = 2;
    CircuitBreaker breaker(config);

    // Closed: failures below the threshold keep traffic flowing.
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.allow_attempt(0.0));
    breaker.on_failure(0.0);
    EXPECT_TRUE(breaker.allow_attempt(1.0));
    breaker.on_failure(1.0);
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    // A success resets the consecutive count.
    breaker.on_success(1.5);
    breaker.on_failure(2.0);
    breaker.on_failure(3.0);
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    // The third consecutive failure opens the breaker.
    breaker.on_failure(4.0);
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.opens(), 1);
    EXPECT_DOUBLE_EQ(breaker.retry_at(), 12.0);

    // Open: fast-fail until the cooldown expires.
    EXPECT_FALSE(breaker.allow_attempt(5.0));
    EXPECT_FALSE(breaker.allow_attempt(11.9));
    // Cooldown over: the next attempt is a half-open probe.
    EXPECT_TRUE(breaker.allow_attempt(12.0));
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_EQ(breaker.probes(), 1);

    // A failed probe re-opens immediately.
    breaker.on_failure(12.5);
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.opens(), 2);
    EXPECT_DOUBLE_EQ(breaker.retry_at(), 20.5);

    // Two successful probes close the breaker again.
    EXPECT_TRUE(breaker.allow_attempt(21.0));
    breaker.on_success(21.1);
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_TRUE(breaker.allow_attempt(21.2));
    breaker.on_success(21.3);
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_EQ(breaker.closes(), 1);
    EXPECT_EQ(breaker.probes(), 3);

    EXPECT_STREQ(breaker_state_name(BreakerState::kClosed), "closed");
    EXPECT_STREQ(breaker_state_name(BreakerState::kOpen), "open");
    EXPECT_STREQ(breaker_state_name(BreakerState::kHalfOpen),
                 "half-open");
}

TEST(CircuitBreaker, SavesRadioEnergyUnderFlappingLink)
{
    // A link that flaps (down 8 s of every 10 s) eats transmission
    // attempts: the sender burns the energy and learns only from the
    // missing ack. The breaker's job is to stop hammering it.
    FaultPlan plan;
    plan.flapping = {{0.0, 1000.0, 10.0, 8.0}};

    LinkSpec link = lan_uplink_spec();
    link.bandwidth_bps = 8000.0; // 1 s per 1000-byte payload
    UplinkConfig ucfg;
    ucfg.backoff_base_s = 0.25;
    ucfg.backoff_max_s = 0.5; // a persistent sender: worst case

    FaultInjector naive_injector(plan);
    UplinkQueue naive(link, 1000.0, ucfg);
    naive.set_fault_injector(&naive_injector);

    FaultInjector supervised_injector(plan);
    UplinkQueue supervised(link, 1000.0, ucfg);
    supervised.set_fault_injector(&supervised_injector);
    BreakerConfig bcfg;
    bcfg.failure_threshold = 2;
    bcfg.cooldown_s = 6.0;
    bcfg.probe_successes = 1;
    CircuitBreaker breaker(bcfg);
    supervised.set_breaker(&breaker);

    naive.enqueue(20, 0.0);
    supervised.enqueue(20, 0.0);
    const int64_t naive_delivered = naive.drain_window(0.0, 400.0);
    const int64_t supervised_delivered =
        supervised.drain_window(0.0, 400.0);

    // Both eventually deliver everything: the breaker defers, it does
    // not drop.
    EXPECT_EQ(naive_delivered, 20);
    EXPECT_EQ(supervised_delivered, 20);
    // The naive sender burned energy into the down-bursts; the
    // breaker fast-failed through them instead.
    EXPECT_GT(naive.stats().lost_in_flight,
              supervised.stats().lost_in_flight);
    EXPECT_LT(supervised.stats().energy_j, naive.stats().energy_j);
    EXPECT_GT(supervised.stats().breaker_opens, 0);
    EXPECT_GT(supervised.stats().breaker_open_wait_s, 0.0);
    // No breaker: the mirror stays zeroed.
    EXPECT_EQ(naive.stats().breaker_opens, 0);
    EXPECT_EQ(naive.stats().breaker_state, 0);
}

NodeStageObservation
healthy_obs(double accuracy = 0.8, double flag_rate = 0.2)
{
    NodeStageObservation obs;
    obs.flag_rate = flag_rate;
    obs.accuracy = accuracy;
    obs.has_accuracy = true;
    return obs;
}

NodeStageObservation
crashed_obs()
{
    NodeStageObservation obs;
    obs.crashed = true;
    return obs;
}

SupervisorConfig
small_supervisor_config()
{
    SupervisorConfig config;
    config.quarantine.crash_threshold = 2;
    config.quarantine.window_stages = 3;
    config.quarantine.readmit_after = 2;
    config.canary.canary_nodes = 1;
    return config;
}

TEST(Quarantine, CrashLoopQuarantinesAndSustainedHealthReadmits)
{
    FleetSupervisor sup(small_supervisor_config(), 3);

    // Stage 0: node 2 crashes once — under the threshold.
    sup.observe(0, healthy_obs());
    sup.observe(1, healthy_obs());
    sup.observe(2, crashed_obs());
    auto d0 = sup.end_stage(0);
    EXPECT_TRUE(d0.newly_quarantined.empty());
    EXPECT_FALSE(sup.quarantined(2));

    // Stage 1: second crash inside the window — quarantined.
    sup.observe(0, healthy_obs());
    sup.observe(1, healthy_obs());
    sup.observe(2, crashed_obs());
    auto d1 = sup.end_stage(1);
    ASSERT_EQ(d1.newly_quarantined, std::vector<int>{2});
    EXPECT_TRUE(sup.quarantined(2));
    EXPECT_EQ(sup.health(2).crashes, 2);

    // Stage 2: one healthy stage is not enough to rejoin.
    sup.observe(0, healthy_obs());
    sup.observe(1, healthy_obs());
    sup.observe(2, healthy_obs());
    auto d2 = sup.end_stage(2);
    EXPECT_TRUE(d2.readmitted.empty());
    EXPECT_TRUE(sup.quarantined(2));

    // Stage 3: the second consecutive healthy stage re-admits.
    sup.observe(0, healthy_obs());
    sup.observe(1, healthy_obs());
    sup.observe(2, healthy_obs());
    auto d3 = sup.end_stage(3);
    ASSERT_EQ(d3.readmitted, std::vector<int>{2});
    EXPECT_FALSE(sup.quarantined(2));
    // Re-admission wipes the fault window: a single new fault must
    // not instantly re-quarantine.
    sup.observe(2, crashed_obs());
    auto d4 = sup.end_stage(4);
    EXPECT_TRUE(d4.newly_quarantined.empty());
}

TEST(Quarantine, RestoreFailuresCountAsFaults)
{
    FleetSupervisor sup(small_supervisor_config(), 2);
    NodeStageObservation bad_reboot;
    bad_reboot.crashed = true;
    bad_reboot.restore_failed = true;

    sup.observe(0, healthy_obs());
    sup.observe(1, bad_reboot);
    sup.end_stage(0);
    sup.observe(0, healthy_obs());
    sup.observe(1, bad_reboot);
    auto d = sup.end_stage(1);
    ASSERT_EQ(d.newly_quarantined, std::vector<int>{1});
    EXPECT_EQ(sup.health(1).restore_failures, 2);
    // Failed reboots depress the health score below a clean node's.
    EXPECT_LT(sup.health(1).score(), sup.health(0).score());
}

TEST(Canary, PickPrefersHealthiestAndKeepsAControl)
{
    SupervisorConfig config = small_supervisor_config();
    config.canary.canary_nodes = 2;
    FleetSupervisor sup(config, 3);

    // Node 1 crashes once: healthy but scarred.
    sup.observe(0, healthy_obs());
    sup.observe(1, crashed_obs());
    sup.observe(2, healthy_obs());
    sup.end_stage(0);

    // Healthiest first (tie broken by index), capped to leave a
    // control: nodes 0 and 2, never the scarred node 1.
    EXPECT_EQ(sup.pick_canaries(), (std::vector<int>{0, 2}));

    // Quarantined nodes are never canaries; with fewer than two
    // healthy nodes there is no control group and no canary.
    sup.observe(1, crashed_obs());
    sup.observe(2, crashed_obs());
    sup.end_stage(1);
    sup.observe(1, crashed_obs());
    sup.observe(2, crashed_obs());
    sup.end_stage(2);
    ASSERT_TRUE(sup.quarantined(1));
    ASSERT_TRUE(sup.quarantined(2));
    EXPECT_TRUE(sup.pick_canaries().empty());
}

TEST(Canary, RegressingCanaryRollsBackToBaseline)
{
    FleetSupervisor sup(small_supervisor_config(), 3);
    sup.start_canary(/*stage=*/0, {0}, /*accepted_version=*/7,
                     /*baseline_version=*/6, 0.8, 0.2);
    ASSERT_TRUE(sup.canary_pending());
    EXPECT_TRUE(sup.is_canary(0));
    EXPECT_FALSE(sup.is_canary(1));

    // The canary's accuracy collapses while the controls hold steady.
    sup.observe(0, healthy_obs(0.3, 0.6));
    sup.observe(1, healthy_obs(0.8, 0.2));
    sup.observe(2, healthy_obs(0.8, 0.2));
    auto d = sup.end_stage(1);
    EXPECT_TRUE(d.canary_judged);
    EXPECT_TRUE(d.canary_rolled_back);
    EXPECT_FALSE(d.canary_promoted);
    EXPECT_EQ(d.canary_version, 7);
    EXPECT_EQ(d.rollback_version, 6);
    EXPECT_FALSE(sup.canary_pending());
}

TEST(Canary, HealthyCanaryPromotes)
{
    FleetSupervisor sup(small_supervisor_config(), 3);
    sup.start_canary(0, {2}, 9, 8, 0.8, 0.2);
    sup.observe(0, healthy_obs(0.78, 0.2));
    sup.observe(1, healthy_obs(0.8, 0.2));
    sup.observe(2, healthy_obs(0.79, 0.25)); // within both tolerances
    auto d = sup.end_stage(1);
    EXPECT_TRUE(d.canary_judged);
    EXPECT_TRUE(d.canary_promoted);
    EXPECT_FALSE(d.canary_rolled_back);
    EXPECT_EQ(d.canary_version, 9);
}

TEST(Canary, JudgmentDefersWhileCanariesAreDown)
{
    FleetSupervisor sup(small_supervisor_config(), 3);
    sup.start_canary(0, {1}, 5, 4, 0.8, 0.2);
    // The canary crashed: no verdict this stage.
    sup.observe(0, healthy_obs());
    sup.observe(1, crashed_obs());
    sup.observe(2, healthy_obs());
    auto d = sup.end_stage(1);
    EXPECT_FALSE(d.canary_judged);
    EXPECT_TRUE(sup.canary_pending());
    // Next stage it participates — and is judged against the
    // recorded pre-update baseline even if every control is silent.
    sup.observe(1, healthy_obs(0.81, 0.2));
    auto d2 = sup.end_stage(2);
    EXPECT_TRUE(d2.canary_judged);
    EXPECT_TRUE(d2.canary_promoted);
}

/**
 * The acceptance scenario: a flapping link, a crash-looping node and
 * a poisoned update that the (deliberately disabled) holdout gate
 * waves through, so the canary stage is the last line of defense.
 */
FleetConfig
supervised_chaos_config()
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    c.pretrain_epochs = 1;
    c.incremental_pretrain_epochs = 1;
    c.node_severity_offset = {0.0, 0.1, 0.2, 0.3};
    c.holdout_images = 32;
    c.stage_window_s = 600.0;
    c.seed = 21;
    // The uplink hammers the link hard so the flapping windows have
    // something to eat (and the breaker something to save).
    c.uplink.backoff_base_s = 0.25;
    c.uplink.backoff_max_s = 0.5;
    // Flapping covers the first two stage windows.
    c.faults.flapping = {{0.0, 1200.0, 10.0, 4.0}};
    // Node 3 crash-loops through stages 0-1, then stays healthy.
    c.faults.crashes = {{0, 3}, {1, 3}};
    // Stage 2's labels are scrambled — and the holdout gate is
    // disabled below, so only the canary can catch it.
    c.faults.poisoned_stages = {2};
    c.faults.seed = 1234;
    c.rollback_tolerance = 1.0; // the gate waves everything through
    SupervisorConfig sup;
    sup.breaker.failure_threshold = 2;
    sup.breaker.cooldown_s = 6.0;
    sup.breaker.probe_successes = 1;
    sup.quarantine.crash_threshold = 2;
    sup.quarantine.window_stages = 3;
    sup.quarantine.readmit_after = 2;
    sup.canary.canary_nodes = 1;
    c.supervisor = sup;
    return c;
}

/** Flatten a supervised stage for exact replay comparison. */
std::vector<double>
supervised_fingerprint(const FleetStageReport& r)
{
    std::vector<double> v = {
        static_cast<double>(r.stage),
        static_cast<double>(r.pooled_uploads),
        static_cast<double>(r.straggler_backlog),
        static_cast<double>(r.retransmits),
        static_cast<double>(r.corrupted),
        static_cast<double>(r.crashed_nodes),
        static_cast<double>(r.update_ran),
        static_cast<double>(r.poisoned),
        static_cast<double>(r.rolled_back),
        r.holdout_before,
        r.holdout_after,
        r.holdout_trained,
        r.mean_accuracy_after,
        static_cast<double>(r.quarantined_nodes),
        static_cast<double>(r.excluded_uploads),
        static_cast<double>(r.canary_started),
        static_cast<double>(r.canary_promoted),
        static_cast<double>(r.canary_rolled_back),
        static_cast<double>(r.breaker_opens),
        r.breaker_open_wait_s,
    };
    for (int n : r.newly_quarantined) v.push_back(n);
    for (int n : r.readmitted) v.push_back(n);
    for (int n : r.canary_nodes) v.push_back(n);
    for (const auto& n : r.nodes) {
        v.push_back(static_cast<double>(n.acquired));
        v.push_back(static_cast<double>(n.uploaded));
        v.push_back(static_cast<double>(n.backlogged));
        v.push_back(static_cast<double>(n.lost_in_crash));
        v.push_back(static_cast<double>(n.dropped));
        v.push_back(static_cast<double>(n.crashed));
        v.push_back(static_cast<double>(n.quarantined));
        v.push_back(static_cast<double>(n.canary));
        v.push_back(n.flag_rate);
        v.push_back(n.accuracy_before);
        v.push_back(n.accuracy_after);
    }
    return v;
}

double
fleet_radio_energy(FleetSim& fleet, size_t nodes)
{
    double joules = 0;
    for (size_t i = 0; i < nodes; ++i)
        joules += fleet.uplink(i).stats().energy_j;
    return joules;
}

TEST(SupervisedFleet, SurvivesChaosAndBeatsTheNaiveFleet)
{
    constexpr int kStages = 6;

    // The breaker-less baseline: same faults, no supervision.
    FleetConfig naive_config = supervised_chaos_config();
    naive_config.supervisor.reset();
    FleetSim naive(naive_config);
    naive.bootstrap(40, 0.2);
    for (int s = 0; s < kStages; ++s) naive.run_stage(30, 0.25);
    const double naive_joules = fleet_radio_energy(naive, 4);

    FleetSim fleet(supervised_chaos_config());
    fleet.bootstrap(40, 0.2);
    std::vector<FleetStageReport> stages;
    for (int s = 0; s < kStages; ++s)
        stages.push_back(fleet.run_stage(30, 0.25));
    const double supervised_joules = fleet_radio_energy(fleet, 4);

    // 1. The breakers kept the radios from hammering the flapping
    // link: strictly less energy than the naive fleet under the same
    // FaultPlan.
    EXPECT_LT(supervised_joules, naive_joules);
    EXPECT_GT(stages.back().breaker_opens, 0);

    // 2. The crash-looper was quarantined after its second crash and
    // re-admitted after sustained health.
    ASSERT_EQ(stages[1].newly_quarantined, std::vector<int>{3});
    EXPECT_TRUE(stages[1].nodes[3].quarantined);
    EXPECT_GT(stages[1].quarantined_nodes, 0);
    bool readmitted = false;
    for (int s = 2; s < kStages; ++s)
        if (!stages[s].readmitted.empty()) {
            EXPECT_EQ(stages[s].readmitted, std::vector<int>{3});
            readmitted = true;
        }
    EXPECT_TRUE(readmitted);
    EXPECT_FALSE(stages.back().nodes[3].quarantined);

    // 3. The poisoned update never got past its canary subset: the
    // stage that judged it rolled the fleet back, and no poisoned
    // canary was ever promoted.
    bool poison_judged = false;
    for (int s = 0; s < kStages; ++s) {
        if (!(stages[s].poisoned && stages[s].canary_started))
            continue;
        // At most one node carried the poisoned weights.
        EXPECT_LE(stages[s].canary_nodes.size(), 1u);
        for (int t = s + 1; t < kStages; ++t) {
            if (!stages[t].canary_promoted &&
                !stages[t].canary_rolled_back)
                continue;
            EXPECT_TRUE(stages[t].canary_rolled_back)
                << "poisoned canary from stage " << s
                << " was promoted at stage " << t;
            poison_judged = true;
            break;
        }
    }
    EXPECT_TRUE(poison_judged)
        << "the poisoned update never reached a canary verdict";
}

TEST(SupervisedFleet, ReplaysBitIdenticallyAcrossThreadCounts)
{
    std::vector<std::vector<double>> runs[2];
    const int widths[2] = {1, 4};
    for (int w = 0; w < 2; ++w) {
        set_num_threads(widths[w]);
        FleetSim fleet(supervised_chaos_config());
        fleet.bootstrap(40, 0.2);
        for (int s = 0; s < 4; ++s)
            runs[w].push_back(
                supervised_fingerprint(fleet.run_stage(30, 0.25)));
    }
    set_num_threads(0);
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (size_t s = 0; s < runs[0].size(); ++s) {
        ASSERT_EQ(runs[0][s].size(), runs[1][s].size());
        for (size_t i = 0; i < runs[0][s].size(); ++i)
            ASSERT_EQ(runs[0][s][i], runs[1][s][i])
                << "stage " << s << " field " << i;
    }
}

} // namespace
} // namespace insitu
