/**
 * @file
 * Deployment planner CLI: given a network, an availability
 * requirement and a latency budget, print the recommended working
 * mode and device configuration — the paper's §IV decision procedure
 * as a tool.
 *
 * Usage: planner_cli [alexnet|vggnet|googlenet|tinynet]
 *                    [latency_ms] [always_on(0|1)]
 * Defaults: alexnet 100 0
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analytics/planner.h"
#include "util/logging.h"

using namespace insitu;

namespace {

NetworkDesc
pick_network(const char* name)
{
    if (std::strcmp(name, "vggnet") == 0) return vgg16_desc();
    if (std::strcmp(name, "googlenet") == 0) return googlenet_desc();
    if (std::strcmp(name, "tinynet") == 0) return tinynet_desc();
    return alexnet_desc();
}

} // namespace

int
main(int argc, char** argv)
{
    const char* net_name = argc > 1 ? argv[1] : "alexnet";
    const double latency_s =
        (argc > 2 ? std::atof(argv[2]) : 100.0) / 1e3;
    const bool always_on = argc > 3 && std::atoi(argv[3]) != 0;
    if (latency_s <= 0) fatal("latency must be positive");

    const NetworkDesc net = pick_network(net_name);
    const NetworkDesc diag = diagnosis_desc(net);
    std::printf("network: %s (%.2f GFLOP/inference, %.1f M weights)\n",
                net.name.c_str(), net.total_ops() / 1e9,
                net.total_weights() / 1e6);
    std::printf("latency budget: %.0f ms, inference 24/7: %s\n",
                latency_s * 1e3, always_on ? "yes" : "no");

    const WorkingMode mode = choose_working_mode(always_on);
    std::printf("=> recommended mode: %s\n\n",
                working_mode_name(mode));

    if (mode == WorkingMode::kSingleRunning) {
        SingleRunningPlanner planner{GpuModel(tx1_spec())};
        const SingleRunningPlan plan =
            planner.plan(net, diag, latency_s);
        std::printf("TX1 (mobile GPU) configuration:\n");
        std::printf("  inference: batch %lld, latency %.1f ms, "
                    "%.2f img/s/W\n",
                    static_cast<long long>(plan.inference_batch),
                    plan.inference_latency * 1e3,
                    plan.inference_perf_per_watt);
        std::printf("  diagnosis: batch %lld (memory-limited, "
                    "%.0f MB), %.2f img/s/W\n",
                    static_cast<long long>(plan.diagnosis_batch),
                    plan.diagnosis_memory_bytes / 1e6,
                    plan.diagnosis_perf_per_watt);
        if (plan.inference_latency > latency_s) {
            std::printf("  warning: even batch 1 misses the budget "
                        "on this device\n");
        }
    } else {
        CoRunningPlanner planner{FpgaModel(vx690t_spec())};
        const CoRunningPlan plan = planner.plan(net, latency_s);
        std::printf("VX690T (FPGA) WSS+NWS configuration:\n");
        if (!plan.feasible) {
            std::printf("  infeasible: no WSS configuration meets "
                        "%.0f ms on this device\n",
                        latency_s * 1e3);
            return 1;
        }
        std::printf("  WSS group %lld (each 14x14 + 9x7x7 PEs), FCN "
                    "engine 8x10\n",
                    static_cast<long long>(plan.config.group_size));
        std::printf("  FCN batch %lld, latency %.1f ms, %.1f img/s, "
                    "%.2f img/s/W\n",
                    static_cast<long long>(plan.config.batch),
                    plan.latency * 1e3, plan.throughput,
                    plan.perf_per_watt);
    }
    return 0;
}
