/**
 * @file
 * Wildlife-sanctuary camera trap (the paper's motivating scenario).
 *
 * A Serengeti-style monitoring node classifies animals from camera
 * traps. Inference runs during the day; the diagnosis task runs at
 * night when the cameras are quiet — the Single-running mode — so the
 * node plans both tasks on its mobile GPU with the time and resource
 * models, and the day/night cycle drives real distribution drift.
 */
#include <cstdio>

#include "analytics/planner.h"
#include "core/framework.h"

using namespace insitu;

namespace {

/** One day of sanctuary data: bright mornings, dim evenings. */
Dataset
day_capture(const SynthConfig& synth, int day, Rng& rng)
{
    // The dry season progresses: haze and harsher light drift the
    // distribution a little every day.
    const double severity = 0.15 + 0.04 * day;
    Condition cond = Condition::in_situ(severity);
    cond.name = "day-" + std::to_string(day);
    return make_dataset(synth, 100, cond, rng);
}

} // namespace

int
main()
{
    std::printf("== Serengeti-style wildlife monitor ==\n");

    FrameworkConfig config;
    config.update.epochs = 3;
    config.pretrain_epochs = 2;
    config.inference_always_on = false; // cameras sleep at night
    config.latency_requirement_s = 0.033; // 30 FPS trigger bursts
    Framework framework(config);

    std::printf("working mode: %s (inference is not 24/7)\n",
                working_mode_name(framework.working_mode()));

    SynthConfig synth;
    Rng rng(42);
    const Dataset initial =
        make_dataset(synth, 400, Condition::in_situ(0.15), rng);
    std::printf("bootstrap accuracy: %.2f\n",
                framework.bootstrap(initial));

    // A week in the sanctuary.
    double uploaded = 0, acquired = 0;
    for (int day = 1; day <= 5; ++day) {
        const Dataset capture = day_capture(synth, day, rng);
        const LoopReport report = framework.autonomous_step(capture);
        uploaded += static_cast<double>(report.uploaded);
        acquired += static_cast<double>(report.node.acquired);
        std::printf("day %d: %3lld/%3lld uploaded, day accuracy "
                    "%.2f -> %.2f\n",
                    day, static_cast<long long>(report.uploaded),
                    static_cast<long long>(report.node.acquired),
                    report.node.accuracy.value_or(0.0),
                    report.accuracy_after);
    }
    std::printf("week total: %.0f%% of captures never left the "
                "sanctuary\n",
                100.0 * (1.0 - uploaded / acquired));

    // Nightly schedule: the time model picks the inference burst
    // batch; Eq (9) sizes the big nightly diagnosis batches.
    SingleRunningPlanner planner{GpuModel(tx1_spec())};
    const SingleRunningPlan plan =
        planner.plan(alexnet_desc(), diagnosis_desc(alexnet_desc()),
                     config.latency_requirement_s);
    std::printf("TX1 schedule: day inference batch %lld "
                "(%.1f ms, %.2f img/s/W), night diagnosis batch %lld "
                "(%.2f img/s/W)\n",
                static_cast<long long>(plan.inference_batch),
                plan.inference_latency * 1e3,
                plan.inference_perf_per_watt,
                static_cast<long long>(plan.diagnosis_batch),
                plan.diagnosis_perf_per_watt);

    // What the radio saves compared to shipping everything.
    const LinkSpec link = iot_uplink_spec();
    const double all_j =
        link.transfer_energy(acquired * 1000.0 * bytes_per_image());
    const double ours_j =
        link.transfer_energy(uploaded * 1000.0 * bytes_per_image());
    std::printf("radio energy at paper scale: %.0f J vs %.0f J "
                "(%.0f%% saved)\n",
                all_j, ours_j, 100.0 * (1.0 - ours_j / all_j));
    return 0;
}
