/**
 * @file
 * 24/7 video surveillance on an FPGA node (Co-running mode).
 *
 * A surveillance deployment cannot pause inference, so the diagnosis
 * task must co-run. This example shows why the GPU is the wrong
 * substrate for that (interference), sizes the WSS+NWS pipeline for a
 * latency SLA with the Co-running planner, and then drives the
 * cycle-approximate architecture simulator to compare NWS / WS / WSS
 * on the deployed network.
 */
#include <cstdio>

#include "analytics/planner.h"
#include "fpga/pipeline.h"
#include "hw/gpu_model.h"

using namespace insitu;

int
main()
{
    std::printf("== 24/7 surveillance node (Co-running mode) ==\n");
    const NetworkDesc net = alexnet_desc();
    const double sla = 0.05; // 50 ms per camera frame batch

    std::printf("working mode: %s (inference must be 24/7)\n",
                working_mode_name(choose_working_mode(true)));

    // Why not just co-run on the mobile GPU? Interference.
    GpuModel gpu(tx1_spec());
    const double diag_load =
        diagnosis_desc(net).total_ops() * 9.0 * 16.0;
    std::printf("on TX1, co-running a 16-image diagnosis batch "
                "inflates inference latency %.1fx -> SLA violation\n",
                gpu.corun_slowdown(net.total_ops(), diag_load));

    // Plan the FPGA pipeline for the SLA.
    CoRunningPlanner planner{FpgaModel(vx690t_spec())};
    const CoRunningPlan plan = planner.plan(net, sla);
    if (!plan.feasible) {
        std::printf("no feasible WSS configuration for %.0f ms\n",
                    sla * 1e3);
        return 1;
    }
    std::printf("plan: WSS group %lld x (14x14 + 9x7x7 PEs), FCN "
                "engine 8x10, batch %lld\n",
                static_cast<long long>(plan.config.group_size),
                static_cast<long long>(plan.config.batch));
    std::printf("      latency %.1f ms, throughput %.1f img/s, "
                "%.2f img/s/W\n",
                plan.latency * 1e3, plan.throughput,
                plan.perf_per_watt);

    // Compare the three architectures at the same PE budget.
    FpgaArchSim sim(vx690t_spec(), 2628);
    std::printf("conv stage at 2628 PEs (CONV-3 sharing):\n");
    for (ArchKind kind :
         {ArchKind::kNws, ArchKind::kWs, ArchKind::kWss}) {
        const ConvRunStats stats = sim.run_conv_layers(net, kind, 3);
        std::printf("  %-3s: %.2f ms compute + %.2f ms weight access "
                    "= %.2f ms (tile idle %.0f%%)\n",
                    arch_name(kind), stats.compute_seconds * 1e3,
                    stats.access_seconds * 1e3,
                    stats.total_seconds() * 1e3,
                    stats.idle_fraction * 100);
    }

    // And the full pipeline under a sweep of SLAs.
    CorunPipeline pipe(vx690t_spec(), 2628, {8, 10});
    std::printf("throughput under SLA sweep (img/s):\n");
    for (double req : {0.05, 0.1, 0.2, 0.4}) {
        std::printf("  %.0f ms:", req * 1e3);
        for (PipelineVariant v :
             {PipelineVariant::kNws, PipelineVariant::kNwsBatch,
              PipelineVariant::kWs, PipelineVariant::kWssNws}) {
            const PipelinePlan p = pipe.best_under_latency(net, v, req);
            if (p.feasible)
                std::printf("  %s=%.0f", pipeline_variant_name(v),
                            p.throughput);
            else
                std::printf("  %s=x", pipeline_variant_name(v));
        }
        std::printf("\n");
    }
    return 0;
}
