/**
 * @file
 * Long-horizon deployment study: 14 simulated days of a solar-powered
 * node under a periodic day/night environment with seasonal drift.
 *
 * Exercises the extension modules together: EnvironmentSchedule
 * drives the data conditions hour by hour, the node serves inference
 * and defers diagnosis uploads into an UplinkQueue that only drains
 * during the night radio window, the duty-cycle scheduler prices the
 * node-day, and a Battery integrates the energy. The cloud keeps a
 * versioned registry and rolls back regressed updates.
 */
#include <cstdio>

#include "cloud/registry.h"
#include "core/framework.h"
#include "data/schedule.h"
#include "hw/battery.h"
#include "iot/scheduler.h"
#include "iot/uplink.h"

using namespace insitu;

int
main()
{
    std::printf("== 14-day solar deployment study ==\n");

    FrameworkConfig config;
    config.update.epochs = 2;
    config.pretrain_epochs = 2;
    Framework framework(config);

    SynthConfig synth;
    Rng rng(7);
    EnvironmentSchedule env;
    env.base_severity = 0.15;
    env.night_amplitude = 0.35;
    env.drift_per_day = 0.01; // dry season approaching

    const Dataset initial =
        make_dataset(synth, 300, env.at_hours(12.0), rng);
    framework.bootstrap(initial);

    // Node-side infrastructure.
    DutyCycleConfig duty;
    duty.frames_per_day = 60; // matches the simulated capture rate
    DutyCycleScheduler scheduler(GpuModel(tx1_spec()), duty);
    const DutyCyclePlan day_plan = scheduler.plan(
        tinynet_desc(), diagnosis_desc(tinynet_desc()));
    BatterySpec battery_spec;
    battery_spec.harvest_wh_per_day = 42.0; // sized for ~37 Wh/day load
    Battery battery(battery_spec);
    UplinkQueue uplink(iot_uplink_spec(),
                       1000.0 * bytes_per_image());
    ModelRegistry registry;

    Dataset holdout = make_dataset(synth, 200, env.at_hours(12.0), rng);
    registry.commit(framework.cloud().inference(), "bootstrap",
                    framework.node().inference().accuracy(holdout),
                    initial.size());

    int rollbacks = 0;
    bool powered = true;
    for (int day = 1; day <= 14 && powered; ++day) {
        // Capture at noon and at dusk; conditions come from the
        // schedule, so nights and the seasonal drift both matter.
        const double t0 = (day - 1) * 24.0;
        const Dataset noon =
            make_dataset(synth, 30, env.at_hours(t0 + 12.0), rng);
        const Dataset dusk =
            make_dataset(synth, 30, env.at_hours(t0 + 19.0), rng);
        const Dataset capture = concat_datasets({&noon, &dusk});

        const LoopReport report = framework.autonomous_step(capture);
        uplink.enqueue(report.uploaded, t0 * 3600.0);
        // Radio window: 22:00 - 06:00.
        uplink.drain_window((t0 + 22.0) * 3600.0,
                            (t0 + 30.0) * 3600.0);

        // Validate and version the refreshed model.
        const double val =
            framework.node().inference().accuracy(holdout);
        registry.commit(framework.cloud().inference(),
                        "day-" + std::to_string(day), val,
                        initial.size() + day * 60);
        if (registry
                .rollback_if_regressed(framework.cloud().inference(),
                                       0.15)
                .has_value()) {
            ++rollbacks;
        }

        // Energy: the scheduler's modeled day plus radio draw.
        const double radio_wh = uplink.stats().energy_j / 3600.0;
        powered = battery.step_day(day_plan.energy_wh + radio_wh,
                                   day % 7 == 0 ? 0.4 : 1.0);
        std::printf("day %2d: sev %.2f, acc %.2f, uploaded %2lld, "
                    "backlog %lld, battery %3.0f%%\n",
                    day, env.severity_at_hours(t0 + 12.0), val,
                    static_cast<long long>(report.uploaded),
                    static_cast<long long>(uplink.backlog()),
                    100.0 * battery.state_of_charge());
    }

    std::printf("survived: %s | min charge %.0f%% | uplink mean "
                "delay %.1f h | rollbacks %d | versions %zu\n",
                powered ? "yes" : "no",
                100.0 * battery.min_state_of_charge(),
                uplink.stats().mean_delay_s() / 3600.0, rollbacks,
                registry.size());
    return powered ? 0 : 1;
}
