/**
 * @file
 * Chaos-tested fleet: the In-situ loop under realistic failure.
 *
 * A three-node fleet runs multi-stage incremental learning while a
 * seeded FaultPlan throws everything a field deployment sees at it:
 * 20% payload loss and 5% corruption on every uplink, a half-stage
 * link outage, one node crashing (and rebooting from its checkpoint)
 * mid-run, and one stage whose upload labels arrive poisoned. The
 * run prints a per-stage resilience report, then replays itself from
 * the same seed to demonstrate the whole scenario is deterministic.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "iot/fleet.h"

using namespace insitu;

namespace {

FleetConfig
chaos_config()
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    // Stages train on few, hard (flagged-only) images; the
    // bootstrap's learning rate overfits them and tanks the holdout,
    // so incremental updates take smaller steps.
    c.incremental_update = c.update;
    c.incremental_update->lr = 0.003;
    c.incremental_update->epochs = 1;
    c.pretrain_epochs = 3;
    c.incremental_pretrain_epochs = 1;
    c.node_severity_offset = {0.0, 0.1, 0.2};
    c.stage_window_s = 60.0;
    c.holdout_images = 64;
    c.rollback_tolerance = 0.04;
    c.seed = 42;

    // The failure scenario. Stage s occupies simulated time
    // [60 s, 60 (s+1)).
    c.faults.payload_loss_prob = 0.20;
    c.faults.payload_corrupt_prob = 0.05;
    c.faults.outages = {{60.0, 115.0}}; // most of stage 1's window:
                                        // stragglers spill to stage 2
    c.faults.crashes = {{2, 1}};        // node 1 reboots in stage 2
    c.faults.poisoned_stages = {3};     // bad labels in stage 3
    c.faults.seed = 0xC0FFEE;
    return c;
}

/** One stage's resilience report as a printable line. */
std::string
stage_line(const FleetStageReport& r)
{
    char buf[256];
    std::string flags;
    if (r.crashed_nodes > 0)
        flags += " crash x" + std::to_string(r.crashed_nodes);
    if (r.poisoned) flags += " POISONED";
    if (r.rolled_back) {
        char rejected[64];
        std::snprintf(rejected, sizeof(rejected),
                      " -> REJECTED %.2f, kept %.2f",
                      r.holdout_trained, r.holdout_after);
        flags += rejected;
    }
    if (!r.update_ran) flags += " (no uploads, no update)";
    std::snprintf(buf, sizeof(buf),
                  "stage %d: delivered %3lld, backlog %3lld, "
                  "retx %3lld, gate %.2f -> %.2f, mean acc %.2f%s",
                  r.stage, static_cast<long long>(r.pooled_uploads),
                  static_cast<long long>(r.straggler_backlog),
                  static_cast<long long>(r.retransmits),
                  r.holdout_before, r.holdout_trained,
                  r.mean_accuracy_after, flags.c_str());
    return buf;
}

/** Run the full scenario, returning the per-stage report lines. */
std::vector<std::string>
run_scenario(bool print)
{
    FleetSim fleet(chaos_config());
    const double boot = fleet.bootstrap(90, 0.2);
    if (print) std::printf("bootstrap accuracy: %.2f\n", boot);

    std::vector<std::string> lines;
    for (int stage = 0; stage < 5; ++stage) {
        const FleetStageReport r =
            fleet.run_stage(45, 0.25 + 0.03 * stage);
        lines.push_back(stage_line(r));
        if (print) std::printf("%s\n", lines.back().c_str());
    }

    if (print) {
        const FaultLog& log = fleet.injector().log();
        std::printf("\nfaults injected: %lld lost, %lld corrupted, "
                    "%lld crashes, %lld poisoned updates\n",
                    static_cast<long long>(log.payloads_lost),
                    static_cast<long long>(log.payloads_corrupted),
                    static_cast<long long>(log.crashes),
                    static_cast<long long>(log.poisoned_updates));
        int64_t dropped = 0, retx = 0;
        double outage_s = 0;
        for (size_t i = 0; i < fleet.size(); ++i) {
            dropped += fleet.uplink(i).stats().dropped;
            retx += fleet.uplink(i).stats().retransmits;
            outage_s += fleet.uplink(i).stats().outage_wait_s;
        }
        std::printf("uplinks: %lld retransmits, %lld backlog drops, "
                    "%.0f s waited out in outages\n",
                    static_cast<long long>(retx),
                    static_cast<long long>(dropped), outage_s);
        std::printf("registry: %zu versions kept by the "
                    "validation gate\n",
                    fleet.cloud().registry().size());
    }
    return lines;
}

} // namespace

int
main()
{
    std::printf("== chaos fleet: 3 nodes, 20%% loss, outage, crash, "
                "poisoned update ==\n");
    const std::vector<std::string> first = run_scenario(true);

    std::printf("\nreplaying the identical scenario from the same "
                "seed...\n");
    const std::vector<std::string> second = run_scenario(false);
    const bool identical = first == second;
    std::printf("replay bit-identical: %s\n",
                identical ? "yes" : "NO (determinism broken)");
    return identical ? 0 : 1;
}
