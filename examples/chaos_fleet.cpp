/**
 * @file
 * Chaos-tested fleet: the In-situ loop under realistic failure,
 * with and without the self-healing supervision layer.
 *
 * A three-node fleet runs multi-stage incremental learning while a
 * seeded FaultPlan throws everything a field deployment sees at it:
 * 20% payload loss and 5% corruption on every uplink, a flapping link
 * that silently eats transmissions for two stage windows, one node
 * crash-looping (and rebooting from its checkpoint), and one stage
 * whose upload labels arrive poisoned — with the cloud's holdout gate
 * deliberately disabled, so only a canary rollout can catch it.
 *
 * The same scenario runs twice: unsupervised (PR 1's local defenses
 * only) and supervised (circuit breakers, crash-loop quarantine,
 * canary rollout). The run prints a per-stage resilience report and
 * the recovered accuracy / saved radio energy, then replays the
 * supervised run from the same seed to demonstrate the whole
 * scenario — supervision decisions included — is deterministic.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "iot/fleet.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace insitu;

namespace {

FleetConfig
chaos_config(bool supervised)
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.update.epochs = 2;
    c.pretrain_epochs = 3;
    c.incremental_pretrain_epochs = 1;
    c.node_severity_offset = {0.0, 0.1, 0.2};
    c.stage_window_s = 60.0;
    c.holdout_images = 64;
    // The holdout gate waves everything through: this scenario
    // demonstrates the *canary* as the second line of defense.
    c.rollback_tolerance = 1.0;
    c.seed = 42;
    // A persistent sender: short backoff ceiling, so a flapping link
    // gets hammered unless a breaker intervenes.
    c.uplink.backoff_max_s = 1.0;

    // The failure scenario. Stage s occupies simulated time
    // [60 s, 60 (s+1)).
    c.faults.payload_loss_prob = 0.20;
    c.faults.payload_corrupt_prob = 0.05;
    // Stages 0-1: the link flaps, down 8 s of every 10 s. Unlike an
    // outage, a flap is discovered only by a failed (energy-burning)
    // transmission attempt.
    c.faults.flapping = {{0.0, 120.0, 10.0, 8.0}};
    c.faults.crashes = {{0, 1}, {1, 1}}; // node 1 crash-loops
    c.faults.poisoned_stages = {3};      // bad labels in stage 3
    c.faults.seed = 0xC0FFEE;

    if (supervised) {
        SupervisorConfig sup; // stock breaker/quarantine/canary knobs
        c.supervisor = sup;
    }
    return c;
}

/** One stage's resilience report as a printable line. */
std::string
stage_line(const FleetStageReport& r)
{
    char buf[320];
    std::string flags;
    if (r.crashed_nodes > 0)
        flags += " crash x" + std::to_string(r.crashed_nodes);
    if (r.poisoned) flags += " POISONED";
    if (r.rolled_back) {
        char rejected[64];
        std::snprintf(rejected, sizeof(rejected),
                      " -> REJECTED %.2f, kept %.2f",
                      r.holdout_trained, r.holdout_after);
        flags += rejected;
    }
    for (int n : r.newly_quarantined)
        flags += " QUARANTINE node " + std::to_string(n);
    for (int n : r.readmitted)
        flags += " readmit node " + std::to_string(n);
    if (r.canary_started) {
        flags += " canary ->";
        for (int n : r.canary_nodes)
            flags += " node " + std::to_string(n);
    }
    if (r.canary_promoted) flags += " canary PROMOTED";
    if (r.canary_rolled_back) flags += " canary ROLLED BACK";
    if (!r.update_ran) flags += " (no update)";
    std::snprintf(buf, sizeof(buf),
                  "stage %d: delivered %3lld, backlog %3lld, "
                  "retx %3lld, gate %.2f -> %.2f, mean acc %.2f%s",
                  r.stage, static_cast<long long>(r.pooled_uploads),
                  static_cast<long long>(r.straggler_backlog),
                  static_cast<long long>(r.retransmits),
                  r.holdout_before, r.holdout_trained,
                  r.mean_accuracy_after, flags.c_str());
    return buf;
}

/** What one whole run came to. */
struct RunOutcome {
    std::vector<std::string> lines;
    double radio_joules = 0;
    int64_t delivered = 0;
    /// Fleet accuracy right after the poisoned stage deployed — the
    /// stage where fleet-wide rollout and canary rollout differ most.
    double post_poison_accuracy = 0;

    double joules_per_image() const
    {
        return delivered ? radio_joules /
                               static_cast<double>(delivered)
                         : 0.0;
    }
};

/** Run the full scenario, returning the per-stage report lines. */
RunOutcome
run_scenario(bool supervised, bool print)
{
    FleetSim fleet(chaos_config(supervised));
    const double boot = fleet.bootstrap(90, 0.2);
    if (print) std::printf("bootstrap accuracy: %.2f\n", boot);

    RunOutcome out;
    for (int stage = 0; stage < 5; ++stage) {
        const FleetStageReport r =
            fleet.run_stage(45, 0.25 + 0.03 * stage);
        out.lines.push_back(stage_line(r));
        if (r.poisoned) out.post_poison_accuracy = r.mean_accuracy_after;
        if (print) std::printf("%s\n", out.lines.back().c_str());
    }

    int64_t retx = 0, breaker_opens = 0;
    double open_wait_s = 0;
    for (size_t i = 0; i < fleet.size(); ++i) {
        const UplinkStats& s = fleet.uplink(i).stats();
        out.radio_joules += s.energy_j;
        out.delivered += s.delivered;
        retx += s.retransmits;
        breaker_opens += s.breaker_opens;
        open_wait_s += s.breaker_open_wait_s;
    }
    if (print) {
        const FaultLog& log = fleet.injector().log();
        std::printf("faults injected: %lld lost, %lld flapped, "
                    "%lld corrupted, %lld crashes, %lld poisoned\n",
                    static_cast<long long>(log.payloads_lost),
                    static_cast<long long>(log.flapping_failures),
                    static_cast<long long>(log.payloads_corrupted),
                    static_cast<long long>(log.crashes),
                    static_cast<long long>(log.poisoned_updates));
        std::printf("uplinks: %lld retransmits, %.3f J radio energy",
                    static_cast<long long>(retx), out.radio_joules);
        if (supervised)
            std::printf(", %lld breaker opens, %.0f s fast-failed",
                        static_cast<long long>(breaker_opens),
                        open_wait_s);
        std::printf("\nregistry: %zu versions\n",
                    fleet.cloud().registry().size());
    }
    return out;
}

} // namespace

int
main()
{
    // INSITU_TELEMETRY_JSONL=<path> turns on full telemetry for the
    // whole scenario: the clock switches to simulated time (stamped by
    // FleetSim's stage windows) and spans are recorded, so the
    // exported file is a pure function of the scenario — byte-
    // identical at any INSITU_THREADS (pinned by scripts/check_obs.sh).
    const char* telemetry_path =
        std::getenv("INSITU_TELEMETRY_JSONL");
    const bool telemetry =
        telemetry_path != nullptr && *telemetry_path != '\0';
    if (telemetry) {
        obs::TelemetryClock::global().enable_simulated(0.0);
        obs::TraceRecorder::global().set_enabled(true);
    }

    std::printf("== chaos fleet: flapping link, crash-looping node, "
                "poisoned update (gate disabled) ==\n");
    std::printf("\n-- unsupervised (local defenses only) --\n");
    const RunOutcome naive = run_scenario(false, true);

    std::printf("\n-- supervised (breakers + quarantine + canary) "
                "--\n");
    const RunOutcome supervised = run_scenario(true, true);

    std::printf("\n== supervised vs unsupervised, same FaultPlan ==\n");
    // The two fleets flag (and therefore deliver) different image
    // counts once their models diverge, so the fair radio metric is
    // energy per delivered image.
    std::printf("radio energy: %.4f J/image (%.3f J / %lld img) vs "
                "%.4f J/image (%.3f J / %lld img) — %.0f%% saved\n",
                supervised.joules_per_image(),
                supervised.radio_joules,
                static_cast<long long>(supervised.delivered),
                naive.joules_per_image(), naive.radio_joules,
                static_cast<long long>(naive.delivered),
                100.0 * (1.0 - supervised.joules_per_image() /
                                   naive.joules_per_image()));
    std::printf("accuracy after the poisoned stage deployed: "
                "%.2f vs %.2f (%+.2f recovered — the canary kept "
                "the poison off %zu of %zu nodes)\n",
                supervised.post_poison_accuracy,
                naive.post_poison_accuracy,
                supervised.post_poison_accuracy -
                    naive.post_poison_accuracy,
                static_cast<size_t>(2), static_cast<size_t>(3));

    std::printf("\nreplaying the supervised scenario from the same "
                "seed...\n");
    const RunOutcome replay = run_scenario(true, false);
    const bool identical = supervised.lines == replay.lines;
    std::printf("replay bit-identical: %s\n",
                identical ? "yes" : "NO (determinism broken)");

    if (telemetry) {
        if (!obs::export_jsonl_file(telemetry_path)) {
            std::printf("telemetry export FAILED: %s\n",
                        telemetry_path);
            return 1;
        }
        std::printf("telemetry written to %s\n", telemetry_path);
    }
    return identical ? 0 : 1;
}
