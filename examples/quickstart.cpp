/**
 * @file
 * Quickstart: the whole In-situ AI loop in ~60 lines of user code.
 *
 * 1. Generate an initial batch of (mostly unlabeled) IoT data.
 * 2. Bootstrap in the cloud: unsupervised pre-training, transfer
 *    learning, supervised training, deployment to the node.
 * 3. Stream drifting data through the node: it serves inference,
 *    diagnoses what it does not recognize, uploads only that, and the
 *    cloud incrementally updates the models.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/framework.h"

using namespace insitu;

int
main()
{
    // Configure the framework: a 10-class TinyNet deployment whose
    // diagnosis network shares its first three conv layers with the
    // inference network.
    FrameworkConfig config;
    config.update.epochs = 3;
    config.pretrain_epochs = 2;
    config.latency_requirement_s = 0.1;
    Framework framework(config);

    // Acquire the initial data under mild conditions and bootstrap.
    SynthConfig synth;
    Rng rng(1);
    const Dataset initial =
        make_dataset(synth, 300, Condition::in_situ(0.2), rng);
    const double boot_acc = framework.bootstrap(initial);
    std::printf("bootstrap: node accuracy %.2f on initial data\n",
                boot_acc);

    // The environment drifts; the node keeps itself current.
    for (int step = 1; step <= 3; ++step) {
        const double severity = 0.2 + 0.1 * step;
        const Dataset stage = make_dataset(
            synth, 120, Condition::in_situ(severity), rng);
        const LoopReport report = framework.autonomous_step(stage);
        std::printf(
            "step %d (severity %.1f): accuracy %.2f -> %.2f, "
            "uploaded %lld/%lld images (%.0f%% stayed local)\n",
            step, severity, report.node.accuracy.value_or(0.0),
            report.accuracy_after,
            static_cast<long long>(report.uploaded),
            static_cast<long long>(report.node.acquired),
            100.0 * (1.0 - static_cast<double>(report.uploaded) /
                               static_cast<double>(
                                   report.node.acquired)));
    }

    // Ask the planners how to deploy this workload on real hardware.
    const SingleRunningPlan single = framework.plan_single_running();
    std::printf("Single-running plan on TX1: inference batch %lld "
                "(latency %.1f ms), diagnosis batch %lld\n",
                static_cast<long long>(single.inference_batch),
                single.inference_latency * 1e3,
                static_cast<long long>(single.diagnosis_batch));
    const CoRunningPlan corun = framework.plan_co_running();
    std::printf("Co-running plan on VX690T: WSS group %lld, FCN batch "
                "%lld, latency %.1f ms, %.1f img/s\n",
                static_cast<long long>(corun.config.group_size),
                static_cast<long long>(corun.config.batch),
                corun.latency * 1e3, corun.throughput);
    return 0;
}
