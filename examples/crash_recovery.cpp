/**
 * @file
 * Kill-anywhere recovery harness for the durable-storage subsystem.
 *
 * Four sweeps, each simulating power loss at *every* interesting
 * point of a durable write, then asserting the crash-consistency
 * contract: recovery always lands on old-or-new committed state,
 * never a torn hybrid.
 *
 *   1. WAL truncation: a multi-record log image cut at every byte
 *      offset must recover to exactly a prefix of its records.
 *   2. WAL bit rot: every single-bit flip must shorten the log (or
 *      leave it whole) — never forge or tear a record.
 *   3. Snapshot commit protocol: a crash at every byte of the staged
 *      tmp file, and just before/after the rename, must leave the old
 *      or the new snapshot readable, whole.
 *   4. Registry kill-anywhere: a real cloud's version history (commit,
 *      validated update, canary rollback) is recorded to a WAL; the
 *      log is cut at every offset and replayed into a fresh cloud,
 *      which must land on a committed prefix of the history with the
 *      matching weights, byte for byte.
 *
 * Then the end-to-end drill: a supervised, storage-fault-injected
 * durable fleet is killed between stages and rebuilt from nothing but
 * its durable directory — node checkpoints, registry WAL, supervisor
 * state and stage counter all resume. The whole program prints a
 * deterministic transcript; scripts/check_recovery.sh byte-diffs it
 * at INSITU_THREADS=1 and 4.
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "iot/fleet.h"
#include "nn/serialize.h"
#include "storage/file.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

using namespace insitu;
namespace fs = std::filesystem;

namespace {

[[noreturn]] void
fail(const std::string& what)
{
    std::printf("crash_recovery: FAILED (%s)\n", what.c_str());
    std::exit(1);
}

void
require(bool ok, const std::string& what)
{
    if (!ok) fail(what);
}

/** Sweep 1+2: the WAL's prefix-consistency contract, in memory. */
void
sweep_wal()
{
    std::string image = storage::Wal::encode_header();
    std::vector<size_t> ends;
    for (uint32_t t = 1; t <= 4; ++t) {
        image += storage::Wal::encode_record(
            t, "record-" + std::to_string(t) + "-payload");
        ends.push_back(image.size());
    }

    size_t torn_cuts = 0;
    for (size_t cut = 0; cut <= image.size(); ++cut) {
        const auto rec =
            storage::Wal::scan(std::string_view(image).substr(0, cut));
        size_t committed = 0;
        while (committed < ends.size() && ends[committed] <= cut)
            ++committed;
        if (cut < 8) {
            require(rec.records.empty(), "records before the header");
            continue;
        }
        require(rec.records.size() == committed,
                "cut " + std::to_string(cut) + " recovered " +
                    std::to_string(rec.records.size()) + " records, " +
                    "committed prefix is " + std::to_string(committed));
        for (size_t i = 0; i < committed; ++i)
            require(rec.records[i].payload ==
                        "record-" + std::to_string(i + 1) + "-payload",
                    "torn payload at cut " + std::to_string(cut));
        if (rec.tail_truncated) ++torn_cuts;
    }
    std::printf("[wal] truncation sweep: %zu cuts over %zu records, "
                "every recovery a committed prefix (%zu torn tails "
                "dropped)\n",
                image.size() + 1, ends.size(), torn_cuts);

    size_t shortened = 0;
    for (size_t byte = 0; byte < image.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string rotted = image;
            rotted[byte] = static_cast<char>(
                static_cast<unsigned char>(rotted[byte]) ^ (1u << bit));
            const auto rec = storage::Wal::scan(rotted);
            require(rec.records.size() <= ends.size(),
                    "bit rot forged a record");
            for (size_t i = 0; i < rec.records.size(); ++i)
                require(rec.records[i].payload ==
                            "record-" + std::to_string(i + 1) +
                                "-payload",
                        "bit rot tore record " + std::to_string(i));
            if (rec.records.size() < ends.size()) ++shortened;
        }
    }
    std::printf("[wal] bit-rot sweep: %zu single-bit flips, 0 forged "
                "or torn records (%zu flips shortened the log)\n",
                image.size() * 8, shortened);
}

/** Sweep 3: the snapshot stage-then-rename protocol, on disk. */
void
sweep_snapshot(const std::string& dir)
{
    const std::string path = dir + "/sweep.snap";
    const std::string old_frame =
        storage::SnapshotStore::encode_frame("old-snapshot-state");
    const std::string new_frame =
        storage::SnapshotStore::encode_frame("new-snapshot-state");

    // Crash while staging: the final path still holds the old frame,
    // whatever fraction of the tmp file made it to disk.
    for (size_t cut = 0; cut <= new_frame.size(); ++cut) {
        {
            storage::PosixFile file(path);
            file.remove();
            file.append(old_frame);
            storage::PosixFile tmp(path + ".tmp");
            tmp.append(std::string_view(new_frame).substr(0, cut));
        }
        storage::SnapshotStore store(storage::open_storage_file(path));
        require(store.read().value_or("") == "old-snapshot-state",
                "staged tmp leaked into a read at cut " +
                    std::to_string(cut));
    }
    // Crash after the rename: the new frame, whole.
    {
        storage::PosixFile file(path);
        file.remove();
        file.append(new_frame);
        fs::remove(path + ".tmp");
    }
    storage::SnapshotStore store(storage::open_storage_file(path));
    require(store.read().value_or("") == "new-snapshot-state",
            "post-rename read lost the new snapshot");
    std::printf("[snapshot] commit-protocol sweep: %zu mid-stage "
                "crashes read old, post-rename reads new, 0 torn\n",
                new_frame.size() + 1);
}

/** Sweep 4: kill-anywhere over a real registry WAL. */
void
sweep_registry(const std::string& dir)
{
    TinyConfig tiny;
    tiny.num_permutations = 8;
    tiny.width = 0.5;
    const std::string wal_path = dir + "/registry.wal";

    std::vector<ModelVersion> final_versions;
    std::string final_weights;
    {
        ModelUpdateService cloud(tiny, titan_x_spec(), 5);
        storage::Wal wal(storage::open_storage_file(wal_path));
        wal.recover();
        cloud.attach_wal(&wal);

        Rng rng(11);
        const Dataset data =
            make_dataset(SynthConfig{}, 24, Condition::ideal(), rng);
        const Dataset holdout =
            make_dataset(SynthConfig{}, 16, Condition::ideal(), rng);
        cloud.registry().commit(cloud.inference(), "bootstrap", 0.5, 0);
        UpdatePolicy policy;
        policy.epochs = 1;
        cloud.validated_update(data, policy, holdout, 1.0);
        require(cloud.rollback_to(1, "canary-rollback"),
                "rollback_to refused a known version");
        final_versions = cloud.registry().versions();
        std::ostringstream os;
        save_weights(cloud.inference(), os);
        final_weights = os.str();
    }

    std::string image;
    require(storage::PosixFile(wal_path).read(image),
            "registry WAL unreadable");
    const size_t stride = image.size() > 4096 ? image.size() / 4096 : 1;

    size_t cuts = 0;
    size_t max_versions = 0;
    for (size_t cut = 0; cut <= image.size();
         cut = (cut == image.size() ? cut + 1 : std::min(cut + stride,
                                                         image.size()))) {
        ++cuts;
        const std::string cut_path = dir + "/registry_cut.wal";
        {
            storage::PosixFile file(cut_path);
            file.remove();
            file.append(std::string_view(image).substr(0, cut));
        }
        ModelUpdateService recovered(tiny, titan_x_spec(), 5);
        storage::Wal wal(storage::open_storage_file(cut_path));
        const auto rec = wal.recover();
        recovered.recover(rec.records);

        const auto& got = recovered.registry().versions();
        require(got.size() >= max_versions,
                "recovered history shrank as the cut grew");
        max_versions = got.size();
        require(got.size() <= final_versions.size(),
                "recovered more versions than were committed");
        for (size_t i = 0; i < got.size(); ++i) {
            const auto& want = final_versions[i];
            require(got[i].id == want.id && got[i].tag == want.tag &&
                        got[i].validation_accuracy ==
                            want.validation_accuracy &&
                        got[i].trained_images == want.trained_images,
                    "recovered version " + std::to_string(i) +
                        " differs from the committed history");
        }
        if (got.size() == final_versions.size()) {
            std::ostringstream os;
            save_weights(recovered.inference(), os);
            require(os.str() == final_weights,
                    "full-log recovery changed the weights");
        }
    }
    require(max_versions == final_versions.size(),
            "the untruncated log did not recover the full history");
    std::printf("[registry] kill-anywhere sweep: %zu cuts (stride "
                "%zu), history always a committed prefix of %zu "
                "versions, weights byte-identical at the full log\n",
                cuts, stride, final_versions.size());
}

/** The end-to-end drill: kill a durable chaos fleet, rebuild it. */
FleetConfig
durable_config(const std::string& dir)
{
    FleetConfig c;
    c.tiny.num_permutations = 8;
    c.tiny.width = 0.5;
    c.update.epochs = 1;
    c.pretrain_epochs = 1;
    c.incremental_pretrain_epochs = 1;
    c.node_severity_offset = {0.0, 0.1, 0.2};
    c.stage_window_s = 60.0;
    c.holdout_images = 24;
    c.seed = 42;
    c.faults.payload_loss_prob = 0.10;
    c.faults.crashes = {{0, 1}, {1, 1}}; // node 1 crash-loops
    // Flash is failing too: torn appends, bit rot, commit crashes.
    c.faults.torn_write_prob = 0.05;
    c.faults.bit_rot_prob = 0.03;
    c.faults.crash_mid_commit_prob = 0.05;
    c.faults.stale_snapshot_prob = 0.05;
    c.faults.seed = 0xC0FFEE;
    c.supervisor = SupervisorConfig{};
    c.durable_dir = dir;
    return c;
}

void
print_stage(const FleetStageReport& r)
{
    std::printf("[fleet] stage %d: uploads=%lld crashed=%lld "
                "quarantined=%lld rolled_back=%d acc=%.4f\n",
                r.stage, static_cast<long long>(r.pooled_uploads),
                static_cast<long long>(r.crashed_nodes),
                static_cast<long long>(r.quarantined_nodes),
                r.rolled_back ? 1 : 0, r.mean_accuracy_after);
}

void
drill_fleet(const std::string& dir)
{
    const int64_t kImages = 8;
    const double kSeverity = 0.2;

    {
        FleetSim fleet(durable_config(dir));
        const double boot = fleet.bootstrap(10, kSeverity);
        std::printf("[fleet] bootstrap: acc=%.4f (durable=%d)\n", boot,
                    fleet.durable() ? 1 : 0);
        print_stage(fleet.run_stage(kImages, kSeverity));
        print_stage(fleet.run_stage(kImages, kSeverity));
        // kill -9: the FleetSim is dropped here with no farewell
        // write; everything below starts from the durable dir alone.
    }

    // The black box survived the kill: decode the flight dump the
    // dead fleet persisted with its last stage and print its final
    // words — the post-mortem a real deployment would start from.
    {
        storage::SnapshotStore flight(
            storage::open_storage_file(dir + "/flight.dump"));
        const auto blob = flight.read();
        require(blob.has_value(), "flight dump missing after the kill");
        std::vector<obs::FlightEvent> events;
        int64_t total = 0;
        require(obs::FlightRecorder::decode(*blob, events, &total),
                "flight dump failed to decode");
        require(!events.empty(), "flight dump was empty");
        std::printf("[fleet] flight dump: %zu events (%lld lifetime), "
                    "last: %s %s\n",
                    events.size(), static_cast<long long>(total),
                    events.back().what.c_str(),
                    events.back().detail.c_str());
    }

    FleetSim fleet(durable_config(dir));
    const bool recovered = fleet.recover_from_storage();
    require(recovered, "recover_from_storage found nothing");
    require(fleet.stage_index() == 2,
            "stage counter did not survive the kill");
    std::printf("[fleet] recovered: stage_index=%d versions=%zu "
                "quarantined=[%d,%d,%d]\n",
                fleet.stage_index(),
                fleet.cloud().registry().versions().size(),
                fleet.supervisor()->quarantined(0) ? 1 : 0,
                fleet.supervisor()->quarantined(1) ? 1 : 0,
                fleet.supervisor()->quarantined(2) ? 1 : 0);
    print_stage(fleet.run_stage(kImages, kSeverity));
}

} // namespace

int
main()
{
    std::printf("== crash_recovery: kill-anywhere durability "
                "harness ==\n");
    // INSITU_STATE_DIR=<dir>: run against (and keep) an external
    // state directory, so scripts/check_recovery.sh can byte-diff
    // the surviving durable files — the flight dump in particular —
    // across thread widths after the process exits.
    const char* keep = std::getenv("INSITU_STATE_DIR");
    const bool keep_state = keep != nullptr && *keep != '\0';
    const std::string dir =
        keep_state ? std::string(keep) : "crash_recovery_state";
    fs::remove_all(dir);
    fs::create_directories(dir);

    sweep_wal();
    sweep_snapshot(dir);
    sweep_registry(dir);
    drill_fleet(dir + "/fleet");

    if (!keep_state) fs::remove_all(dir);
    std::printf("crash_recovery: OK\n");
    return 0;
}
