/**
 * @file
 * CLI driver for the sharded discrete-event fleet engine
 * (src/iot/fleet_engine.h): run a fleet of --nodes for --stages
 * windows, optionally under chaos, and write the byte-identical run
 * transcript to --transcript.
 *
 * Determinism contract: the transcript file and the flight dump
 * (INSITU_FLIGHT_DUMP=<path>) are pure functions of the configuration
 * — scripts/check_fleet_scale.sh byte-diffs both across
 * INSITU_THREADS=1 vs 4. Timing lines go to stdout only and are never
 * part of the diffed artifacts.
 *
 * Examples:
 *   fleet_scale --nodes 100000 --stages 6 --chaos \
 *       --transcript /tmp/fleet.txt
 *   INSITU_THREADS=4 INSITU_FLIGHT_DUMP=/tmp/flight.dump \
 *       fleet_scale --nodes 100000 --chaos --transcript /tmp/t4.txt
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "iot/fleet_engine.h"
#include "util/parallel.h"

using namespace insitu;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--nodes N] [--stages S] [--shards K]\n"
        "          [--cloud-shards C] [--seed X] [--chaos]\n"
        "          [--rollback] [--transcript PATH]\n"
        "  --nodes N         fleet size (default 100000)\n"
        "  --stages S        stage windows to run (default 6)\n"
        "  --shards K        node-id shards (default 0 = auto)\n"
        "  --cloud-shards C  cloud update shards (default 4)\n"
        "  --seed X          scenario seed (default 2018)\n"
        "  --chaos           crash/drop/poison fault injection\n"
        "  --rollback        end with rollback_and_redeploy(1)\n"
        "  --transcript PATH write the deterministic transcript\n"
        "env: INSITU_FLIGHT_DUMP=<path> writes the flight-recorder\n"
        "     dump (deterministic, byte-diffable across widths)\n",
        argv0);
}

int64_t
parse_i64(const char* s, const char* flag)
{
    char* end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < 0) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag, s);
        std::exit(2);
    }
    return static_cast<int64_t>(v);
}

} // namespace

int
main(int argc, char** argv)
{
    int64_t nodes = 100000;
    int stages = 6;
    int shards = 0;
    int cloud_shards = 4;
    uint64_t seed = 2018;
    bool chaos = false;
    bool rollback = false;
    std::string transcript_path;

    for (int a = 1; a < argc; ++a) {
        const char* arg = argv[a];
        auto next = [&]() -> const char* {
            if (a + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++a];
        };
        if (std::strcmp(arg, "--nodes") == 0) {
            nodes = parse_i64(next(), "--nodes");
        } else if (std::strcmp(arg, "--stages") == 0) {
            stages = static_cast<int>(parse_i64(next(), "--stages"));
        } else if (std::strcmp(arg, "--shards") == 0) {
            shards = static_cast<int>(parse_i64(next(), "--shards"));
        } else if (std::strcmp(arg, "--cloud-shards") == 0) {
            cloud_shards =
                static_cast<int>(parse_i64(next(), "--cloud-shards"));
        } else if (std::strcmp(arg, "--seed") == 0) {
            seed = static_cast<uint64_t>(parse_i64(next(), "--seed"));
        } else if (std::strcmp(arg, "--chaos") == 0) {
            chaos = true;
        } else if (std::strcmp(arg, "--rollback") == 0) {
            rollback = true;
        } else if (std::strcmp(arg, "--transcript") == 0) {
            transcript_path = next();
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    ScaleFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.cloud_shards = cloud_shards;
    config.seed = seed;
    if (chaos) {
        config.crash_permille = 30;
        config.drop_permille = 50;
        config.poison_permille = 150;
        // A generous gate so poisoned stages are visibly *rejected*
        // rather than silently absorbed.
        config.quality_tolerance_ppm = 20000;
    }

    const auto t_build = std::chrono::steady_clock::now();
    ScaleFleetEngine engine(config);
    const auto t_run = std::chrono::steady_clock::now();
    for (int s = 0; s < stages; ++s) engine.run_stage();
    const auto t_done = std::chrono::steady_clock::now();

    const double build_s =
        std::chrono::duration<double>(t_run - t_build).count();
    const double run_s =
        std::chrono::duration<double>(t_done - t_run).count();
    const double events_per_sec =
        run_s > 0 ? static_cast<double>(engine.events_processed()) /
                        run_s
                  : 0.0;

    std::printf("fleet_scale: nodes=%lld shards=%d cloud_shards=%d "
                "stages=%d chaos=%d seed=%llu\n",
                static_cast<long long>(nodes), engine.shards(),
                cloud_shards, stages, chaos ? 1 : 0,
                static_cast<unsigned long long>(seed));
    std::printf("events=%lld version=%lld quality_ppm=%lld "
                "quarantined=%lld hot_allocs=%lld "
                "approx_mb=%.1f\n",
                static_cast<long long>(engine.events_processed()),
                static_cast<long long>(engine.version()),
                static_cast<long long>(engine.quality_ppm()),
                static_cast<long long>(engine.quarantined_nodes()),
                static_cast<long long>(engine.hot_allocs()),
                static_cast<double>(engine.approx_bytes()) / 1e6);
    std::printf("timing: build=%.3fs run=%.3fs "
                "events_per_sec=%.0f\n",
                build_s, run_s, events_per_sec);

    if (rollback) {
        const auto t0 = std::chrono::steady_clock::now();
        const bool ok = engine.rollback_and_redeploy(1);
        const double ms =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count() *
            1e3;
        std::printf("rollback: ok=%d version=%lld wall_ms=%.2f\n",
                    ok ? 1 : 0,
                    static_cast<long long>(engine.version()), ms);
        if (!ok) return 1;
    }

    if (!transcript_path.empty()) {
        std::ofstream out(transcript_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         transcript_path.c_str());
            return 1;
        }
        out << engine.transcript();
    }
    if (const char* fp = std::getenv("INSITU_FLIGHT_DUMP");
        fp != nullptr && *fp != '\0') {
        std::ofstream out(fp, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", fp);
            return 1;
        }
        out << engine.flight().encode();
    }
    return 0;
}
