/**
 * @file
 * Async co-running serving on one edge node (docs/serving.md).
 *
 * Default mode: a real InsituNode serves the "diurnal_corun" mix —
 * bursty arrivals in three deadline classes, a co-running diagnosis
 * batch, incremental weight updates swapped in through the node's
 * double buffer, and the online batch planner self-calibrating its
 * Eq 3-8 time model along the way. The run transcript and report are
 * a pure function of the seed (pinned by the check_serving ctest).
 *
 * `--acceptance`: smoke sweep of the three canonical mixes comparing
 * the online planner against static batch sizes; prints one verdict
 * line per mix and exits non-zero unless the planner's deadline-miss
 * rate is <= every static policy on every mix.
 *
 * `--chaos`: the gray-failure story (docs/serving.md, "Device gray
 * failures and the degradation ladder"). First a fault-free sanity
 * pair — the guarded runtime's transcript must be byte-identical to
 * the unguarded one, with zero health transitions — then the
 * device-chaos scenario (thermal throttle + jitter storm + transient
 * stalls) guarded vs unguarded: the verdict demands the ladder keep
 * the guaranteed class's deadline-miss rate strictly below the
 * unguarded planner's. Byte-diffed across INSITU_THREADS by the
 * check_degrade ctest.
 *
 * Build: cmake --build build --target serving_demo
 * Run:   ./build/examples/serving_demo [--acceptance|--chaos]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/update_service.h"
#include "iot/node.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serving/scenarios.h"

using namespace insitu;
using namespace insitu::serving;

namespace {

void
print_report(const ServingReport& rep)
{
    std::printf("%-12s %8s %7s %6s %6s %9s %9s %7s\n", "class",
                "arrived", "served", "late", "lost", "p50(ms)",
                "p99(ms)", "miss%");
    auto row = [](const ClassReport& c) {
        std::printf("%-12s %8lld %7lld %6lld %6lld %9.2f %9.2f "
                    "%6.2f%%\n",
                    c.name.c_str(),
                    static_cast<long long>(c.arrived),
                    static_cast<long long>(c.served),
                    static_cast<long long>(c.served_late),
                    static_cast<long long>(c.dropped_capacity +
                                           c.shed_expired +
                                           c.shed_degraded),
                    c.p50_latency_s * 1e3, c.p99_latency_s * 1e3,
                    100.0 * c.miss_rate);
    };
    for (const auto& c : rep.classes) row(c);
    row(rep.total);
    std::printf("batches=%lld mean_batch=%.2f drain=%lld "
                "swaps=%lld/%lld (mid-batch stages=%lld, stall=%.3fs, "
                "torn=%s)\n",
                static_cast<long long>(rep.batches),
                rep.mean_batch_size,
                static_cast<long long>(rep.drain_batches),
                static_cast<long long>(rep.swaps_committed),
                static_cast<long long>(rep.updates_staged),
                static_cast<long long>(rep.mid_batch_stages),
                rep.swap_stall_s, rep.swap_torn ? "YES" : "no");
    std::printf("calibration: fits=%lld scale=%.4f overhead=%.6fs "
                "mean|residual|=%.4f\n",
                static_cast<long long>(rep.calibration_fits),
                rep.final_calibration.time_scale,
                rep.final_calibration.overhead_s,
                rep.mean_abs_residual);
}

/** Default mode: the full co-running story on a real node. */
int
run_demo()
{
    std::printf("== async co-running serving on an edge node ==\n");

    // Stand the node up the usual way: cloud service owns the
    // permutation set, deploys both networks onto the node.
    TinyConfig tiny;
    tiny.num_permutations = 8;
    ModelUpdateService cloud(tiny, titan_x_spec(), 21);
    InsituNode node(tiny, cloud.permutations(), 3, DiagnosisConfig{},
                    21);
    node.deploy_diagnosis(cloud.jigsaw());
    node.deploy_inference(cloud.inference());

    ServingConfig cfg = make_scenario("diurnal_corun", 25.0, 21);
    cfg.transcript = TranscriptLevel::kSummary;
    cfg.real_inference_every = 8; // ground every 8th batch in TinyNet

    ServingRuntime runtime(cfg, &node);
    const ServingReport rep = runtime.run();

    std::printf("--- transcript (summary level) ---\n%s",
                rep.transcript.c_str());
    std::printf("--- report ---\n");
    print_report(rep);
    std::printf("model version after run: %llu\n",
                static_cast<unsigned long long>(
                    node.model_version()));
    return rep.swap_torn ? 1 : 0;
}

/** --acceptance: planner vs statics on every canonical mix. */
int
run_acceptance()
{
    const std::vector<int64_t> statics = {1, 4, 16};
    const double duration_s = 12.0;
    const uint64_t seed = 7;
    bool pass = true;

    std::printf("== serving acceptance sweep (smoke) ==\n");
    for (const std::string& mix : scenario_names()) {
        auto run_policy = [&](PlannerMode mode, int64_t static_b) {
            ServingConfig cfg = make_scenario(mix, duration_s, seed);
            cfg.planner.mode = mode;
            cfg.planner.static_batch = static_b;
            ServingRuntime runtime(cfg);
            return runtime.run();
        };
        const ServingReport online =
            run_policy(PlannerMode::kOnline, 0);
        std::printf("%-18s %-10s miss=%6.2f%% p50=%8.2fms "
                    "p99=%8.2fms mean_batch=%5.2f\n",
                    mix.c_str(), "planner",
                    100.0 * online.total.miss_rate,
                    online.total.p50_latency_s * 1e3,
                    online.total.p99_latency_s * 1e3,
                    online.mean_batch_size);
        bool mix_pass = true;
        for (int64_t b : statics) {
            const ServingReport st =
                run_policy(PlannerMode::kStatic, b);
            const bool beat =
                online.total.miss_rate <= st.total.miss_rate;
            mix_pass = mix_pass && beat;
            std::printf("%-18s static=%-3lld miss=%6.2f%% "
                        "p50=%8.2fms p99=%8.2fms mean_batch=%5.2f%s\n",
                        mix.c_str(), static_cast<long long>(b),
                        100.0 * st.total.miss_rate,
                        st.total.p50_latency_s * 1e3,
                        st.total.p99_latency_s * 1e3,
                        st.mean_batch_size,
                        beat ? "" : "  <- beats planner");
        }
        std::printf("%-18s acceptance: %s\n", mix.c_str(),
                    mix_pass ? "PASS" : "FAIL");
        pass = pass && mix_pass;
    }
    std::printf("overall acceptance: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

/** --chaos: device gray failures, guarded vs unguarded. */
int
run_chaos()
{
    const double duration_s = 30.0;
    const uint64_t seed = 11;

    auto run_cfg = [](ServingConfig cfg) {
        ServingRuntime runtime(std::move(cfg));
        return runtime.run();
    };
    auto degradation_row = [](const char* tag,
                              const ServingReport& rep) {
        std::printf("%-10s health=%s max_rung=%d transitions=%lld "
                    "shed=%lld diag_skipped=%lld calib_skipped=%lld "
                    "forced_drain=%lld recoveries=%lld\n",
                    tag, rep.degradation.final_state.c_str(),
                    rep.degradation.max_rung,
                    static_cast<long long>(
                        rep.degradation.transitions),
                    static_cast<long long>(
                        rep.degradation.shed_degraded),
                    static_cast<long long>(
                        rep.degradation.diag_skipped),
                    static_cast<long long>(
                        rep.degradation.calib_skipped),
                    static_cast<long long>(
                        rep.degradation.forced_drain),
                    static_cast<long long>(
                        rep.degradation.recoveries));
    };

    std::printf("== device gray failures vs the degradation "
                "ladder ==\n");

    // -- 1. fault-free sanity: the detector must never trip, and the
    // guarded transcript must match the unguarded one byte for byte.
    ServingConfig base = make_scenario("diurnal_corun", duration_s,
                                       seed);
    base.transcript = TranscriptLevel::kSummary;
    ServingConfig unguarded_base = base;
    unguarded_base.degrade.enabled = false;
    const ServingReport ff_guarded = run_cfg(base);
    const ServingReport ff_unguarded = run_cfg(unguarded_base);
    const bool fault_free_ok =
        ff_guarded.transcript == ff_unguarded.transcript &&
        ff_guarded.degradation.transitions == 0 &&
        ff_guarded.degradation.max_rung == 0 &&
        ff_guarded.degradation.shed_degraded == 0;
    std::printf("fault-free: transitions=%lld max_rung=%d "
                "transcripts %s -> %s\n",
                static_cast<long long>(
                    ff_guarded.degradation.transitions),
                ff_guarded.degradation.max_rung,
                ff_guarded.transcript == ff_unguarded.transcript
                    ? "identical"
                    : "DIFFER",
                fault_free_ok ? "ok" : "FAIL");

    // -- 2. chaos: throttle + jitter storm + stalls, guarded vs
    // unguarded on the identical scenario seed.
    ServingConfig guarded = make_device_chaos(duration_s, seed);
    guarded.transcript = TranscriptLevel::kSummary;
    // INSITU_FLIGHT_DUMP=<path>: arm the guarded run's flight
    // recorder (dumped when the ladder reaches rung >= 3 or forces a
    // drain); scripts/check_slo.sh byte-diffs the dump across thread
    // widths.
    if (const char* fp = std::getenv("INSITU_FLIGHT_DUMP");
        fp != nullptr && *fp != '\0')
        guarded.flight_dump_path = fp;
    ServingConfig unguarded = guarded;
    unguarded.degrade.enabled = false;
    unguarded.flight_dump_path.clear(); // the guarded run owns it
    const ServingReport chaos_guarded = run_cfg(guarded);
    const ServingReport chaos_unguarded = run_cfg(unguarded);

    std::printf("--- guarded chaos transcript (summary level) "
                "---\n%s",
                chaos_guarded.transcript.c_str());
    std::printf("--- unguarded (planner only) ---\n");
    print_report(chaos_unguarded);
    degradation_row("unguarded", chaos_unguarded);
    std::printf("--- guarded (degradation ladder) ---\n");
    print_report(chaos_guarded);
    degradation_row("guarded", chaos_guarded);

    // The guaranteed class is the mix's non-best-effort one
    // (interactive); the ladder must protect it strictly.
    const ClassReport& g = chaos_guarded.classes[0];
    const ClassReport& u = chaos_unguarded.classes[0];
    const bool protects = g.miss_rate < u.miss_rate;
    const bool engaged = chaos_guarded.degradation.max_rung >= 2 &&
                         chaos_guarded.degradation.shed_degraded > 0;
    std::printf("guaranteed class '%s': guarded miss=%.2f%% "
                "p99=%.2fms vs unguarded miss=%.2f%% p99=%.2fms "
                "(%s)\n",
                g.name.c_str(), 100.0 * g.miss_rate,
                g.p99_latency_s * 1e3, 100.0 * u.miss_rate,
                u.p99_latency_s * 1e3,
                protects ? "strictly better" : "NOT better");

    std::printf("slo: alerts=%lld flight_dumps=%lld (guarded chaos)\n",
                static_cast<long long>(chaos_guarded.slo_alerts),
                static_cast<long long>(chaos_guarded.flight_dumps));

    // INSITU_TRACE_CHROME=<path>: export the whole mode's trace
    // (spans, instants, flow chains) as Chrome trace_event JSON —
    // deterministic, so check_slo.sh byte-diffs it across widths.
    if (const char* tp = std::getenv("INSITU_TRACE_CHROME");
        tp != nullptr && *tp != '\0') {
        if (!obs::export_chrome_trace_file(tp)) {
            std::printf("trace export FAILED: %s\n", tp);
            return 1;
        }
        std::printf("trace exported\n");
    }

    const bool pass = fault_free_ok && protects && engaged;
    std::printf("chaos acceptance: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    // Simulated telemetry time: spans and instants carry the event
    // loop's timeline, and output is byte-stable across hosts.
    obs::TelemetryClock::global().enable_simulated(0.0);
    if (const char* tp = std::getenv("INSITU_TRACE_CHROME");
        tp != nullptr && *tp != '\0')
        obs::TraceRecorder::global().set_enabled(true);
    if (argc > 1 && std::strcmp(argv[1], "--acceptance") == 0)
        return run_acceptance();
    if (argc > 1 && std::strcmp(argv[1], "--chaos") == 0)
        return run_chaos();
    return run_demo();
}
